//! CCE — the client-centric feature-explanation framework (§6).
//!
//! CCE sits between a (possibly remote) model and its client. It collects
//! `(instance, prediction)` pairs during model serving as the context and
//! answers explanation requests with relative keys — without ever querying
//! the model:
//!
//! * **batch mode** — the client holds the whole inference set; keys are
//!   computed by [`Srk`],
//! * **online mode** — inference instances stream in; keys are maintained
//!   by [`OsrkMonitor`] (or [`SsrkMonitor`] when the instance universe is
//!   static and known, §5.3).

use std::collections::HashMap;
use std::sync::OnceLock;

use cce_dataset::{Instance, Label};

use crate::alpha::Alpha;
use crate::context::Context;
use crate::error::ExplainError;
use crate::index::ExplainScratch;
use crate::key::RelativeKey;
use crate::osrk::OsrkMonitor;
use crate::srk::Srk;
use crate::ssrk::SsrkMonitor;

/// Which context-handling mode CCE runs in (§6, "Handling context").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// The client holds the complete inference set.
    #[default]
    Batch,
    /// Inference instances arrive as a stream.
    Online,
}

/// Configuration of a [`Cce`] instance.
#[derive(Debug, Clone, Copy)]
pub struct CceConfig {
    /// Conformity bound for every produced key.
    pub alpha: Alpha,
    /// Mode of operation.
    pub mode: Mode,
    /// Seed for the randomized online algorithm.
    pub seed: u64,
}

impl Default for CceConfig {
    fn default() -> Self {
        Self {
            alpha: Alpha::ONE,
            mode: Mode::Batch,
            seed: 0xCCE,
        }
    }
}

/// The CCE framework facade.
#[derive(Debug, Clone)]
pub struct Cce {
    ctx: Context,
    config: CceConfig,
    /// Lazily-built map from instance to its first context row, backing
    /// [`Cce::explain_instance`]'s O(1) lookup. Kept coherent by
    /// [`Cce::record`].
    row_lookup: OnceLock<HashMap<Instance, usize>>,
}

impl Cce {
    /// Builds a batch-mode CCE over an already-collected context.
    pub fn with_context(ctx: Context, config: CceConfig) -> Self {
        Self {
            ctx,
            config,
            row_lookup: OnceLock::new(),
        }
    }

    /// The collected context.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// The active configuration.
    pub fn config(&self) -> CceConfig {
        self.config
    }

    /// Records one more serving-time observation into the context.
    ///
    /// # Errors
    /// [`ExplainError::WidthMismatch`] on a wrong-width instance.
    pub fn record(&mut self, x: Instance, pred: Label) -> Result<(), ExplainError> {
        let row = self.ctx.len();
        if self.row_lookup.get().is_some() {
            // Keep the built lookup warm; first occurrence wins, and the
            // entry is only added once the width check has passed.
            let key = x.clone();
            self.ctx.push(x, pred)?;
            if let Some(map) = self.row_lookup.get_mut() {
                map.entry(key).or_insert(row);
            }
            Ok(())
        } else {
            self.ctx.push(x, pred)
        }
    }

    /// Explains the context row `target` with an α-conformant relative key.
    ///
    /// Dispatches on the configured [`Mode`] (§6 "Handling context"):
    /// * [`Mode::Batch`] — Algorithm 1 (SRK) over the full context: the
    ///   most succinct result the framework offers;
    /// * [`Mode::Online`] — replays the context through Algorithm 2
    ///   (OSRK), reproducing exactly the (coherent, typically larger) key
    ///   a streaming client would have maintained.
    ///
    /// # Errors
    /// See [`Srk::explain`] / [`OsrkMonitor::observe`].
    pub fn explain_row(&self, target: usize) -> Result<RelativeKey, ExplainError> {
        self.ctx.check_target(target)?;
        match self.config.mode {
            Mode::Batch => Srk::new(self.config.alpha).explain(&self.ctx, target),
            Mode::Online => {
                let mut monitor = self.monitor(
                    self.ctx.instance(target).clone(),
                    self.ctx.prediction(target),
                );
                // Mid-stream errors (early contradictions) may become
                // tolerable as |I| grows under α < 1; judge the final state.
                for r in 0..self.ctx.len() {
                    if r == target {
                        continue;
                    }
                    let _ = monitor.observe(self.ctx.instance(r).clone(), self.ctx.prediction(r));
                }
                if !self
                    .ctx
                    .is_alpha_key(monitor.key(), target, self.config.alpha)
                {
                    return Err(ExplainError::NoConformantKey {
                        contradictions: monitor.n_violators(),
                        tolerance: self.config.alpha.tolerance(self.ctx.len()),
                    });
                }
                Ok(monitor.to_relative_key())
            }
        }
    }

    /// Explains an instance by locating it in the context (it must have
    /// been served, i.e. recorded). The first lookup builds a hash map
    /// from instance to its first row; subsequent lookups are O(1)
    /// instead of an `O(n·|I|)` linear scan.
    ///
    /// # Errors
    /// [`ExplainError::UnknownInstance`] when the instance was never
    /// recorded, plus the failure modes of [`Srk::explain`].
    pub fn explain_instance(&self, x: &Instance) -> Result<RelativeKey, ExplainError> {
        let lookup = self.row_lookup.get_or_init(|| {
            let mut map = HashMap::with_capacity(self.ctx.len());
            for (r, y) in self.ctx.instances().iter().enumerate() {
                map.entry(y.clone()).or_insert(r);
            }
            map
        });
        let row = *lookup.get(x).ok_or(ExplainError::UnknownInstance)?;
        self.explain_row(row)
    }

    /// Starts an online monitor (Algorithm 2) for a target served
    /// prediction. The monitor is seeded from the configuration so runs
    /// are reproducible.
    pub fn monitor(&self, x0: Instance, pred0: Label) -> OsrkMonitor {
        OsrkMonitor::new(x0, pred0, self.config.alpha, self.config.seed)
    }

    /// Starts a deterministic online monitor (Algorithm 3) when the
    /// universe of instances and predictions is known up front (§5.3).
    pub fn monitor_with_universe(
        &self,
        x0: Instance,
        pred0: Label,
        universe: &[(Instance, Label)],
    ) -> SsrkMonitor {
        SsrkMonitor::new(x0, pred0, self.config.alpha, universe)
    }

    /// Explains every context row, skipping rows with no conformant key;
    /// returns `(row, key)` pairs. Convenience for evaluation runs.
    ///
    /// In batch mode this amortizes a [`crate::ContextIndex`] across the
    /// whole batch (identical keys to [`Cce::explain_row`], differentially
    /// tested); online mode replays each monitor as usual.
    pub fn explain_all(&self) -> Vec<(usize, RelativeKey)> {
        let timer = cce_obs::SpanTimer::start(cce_obs::histogram!(
            "cce_batch_explain_ns",
            "mode" => "sequential"
        ));
        let out = match self.config.mode {
            Mode::Batch => {
                let idx = crate::ContextIndex::new(&self.ctx);
                let mut scratch = ExplainScratch::new();
                (0..self.ctx.len())
                    .filter_map(|t| {
                        idx.explain_with(&self.ctx, t, self.config.alpha, &mut scratch)
                            .ok()
                            .map(|k| (t, k))
                    })
                    .collect()
            }
            Mode::Online => (0..self.ctx.len())
                .filter_map(|t| self.explain_row(t).ok().map(|k| (t, k)))
                .collect(),
        };
        timer.stop();
        out
    }

    /// [`Cce::explain_all`] fanned out over `threads` worker threads
    /// (clamped to `1..=len`): the batch engine.
    ///
    /// Targets are independent (the context is read-only), so this is an
    /// embarrassingly parallel batch job; results are identical to the
    /// sequential version and returned in row order. Two engine-level
    /// optimizations ride on top of the lazy-greedy indexed path:
    ///
    /// * **Duplicate-row memoization** (batch mode): every algorithm here
    ///   depends on the target only through its `(instance, prediction)`
    ///   pair, so identical rows provably receive identical keys. The
    ///   engine partitions rows into equivalence classes
    ///   ([`Context::duplicate_classes`]), explains each class's first
    ///   row once, and fans the key out (`cce_batch_memo_hits_total`).
    ///   Online replay is order-sensitive, so online mode keeps one class
    ///   per row.
    /// * **Work stealing**: instead of static chunks, workers claim
    ///   striped batches of classes from a shared atomic cursor, so a run
    ///   of slow targets (long keys, big violator sets) cannot straggle
    ///   the batch behind one unlucky worker.
    ///
    /// The batch survives worker failures: each finished class is
    /// published to a shared slot immediately, so a panicking worker
    /// loses only its in-flight class; unfinished classes are recovered
    /// sequentially with each target isolated under `catch_unwind`, and
    /// one poisoned target costs only its own key — never the batch.
    /// Panics are counted in `cce_parallel_worker_panics_total` and
    /// `cce_explain_errors_total{kind="panic"}`.
    pub fn explain_all_parallel(&self, threads: usize) -> Vec<(usize, RelativeKey)> {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::{AtomicUsize, Ordering};

        let n = self.ctx.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = threads.clamp(1, n);
        // Batch mode shares one read-only index across all workers.
        let idx = match self.config.mode {
            Mode::Batch => Some(crate::ContextIndex::new(&self.ctx)),
            Mode::Online => None,
        };
        let idx = idx.as_ref();
        // Duplicate-target memoization: identical (instance, prediction)
        // rows get identical keys in batch mode, so each equivalence
        // class is explained once. OSRK's replay depends on the target's
        // position in the stream, so online mode gets one class per row.
        let (reps, class_of) = match self.config.mode {
            Mode::Batch => self.ctx.duplicate_classes(),
            Mode::Online => ((0..n as u32).collect(), (0..n as u32).collect()),
        };
        let n_classes = reps.len();
        cce_obs::counter!("cce_batch_memo_hits_total").add((n - n_classes) as u64);
        cce_obs::counter!("cce_batch_memo_classes_total").add(n_classes as u64);

        let explain_rep = |rep: usize, scratch: &mut ExplainScratch| match idx {
            Some(idx) => idx.explain_with(&self.ctx, rep, self.config.alpha, scratch),
            None => self.explain_row(rep),
        };
        let explain_rep = &explain_rep;
        #[cfg(test)]
        let trap = |row: usize| {
            if row == tests::PANIC_TARGET.load(Ordering::Relaxed) {
                panic!("injected test panic for target {row}");
            }
        };
        // One write-once slot per class: workers publish each result the
        // moment it is computed, so nothing finished is ever lost to a
        // later panic in the same worker.
        let slots: Vec<OnceLock<Result<RelativeKey, ExplainError>>> =
            (0..n_classes).map(|_| OnceLock::new()).collect();
        let slots = &slots;
        let cursor = AtomicUsize::new(0);
        let cursor = &cursor;
        // Stripes are sized so each worker claims ~8 batches: large
        // enough to keep cursor contention negligible, small enough that
        // skewed classes rebalance.
        let stripe = n_classes.div_ceil(threads * 8).clamp(1, 256);

        let timer = cce_obs::SpanTimer::start(cce_obs::histogram!(
            "cce_batch_explain_ns",
            "mode" => "parallel"
        ));
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    #[cfg(test)]
                    let class_of = &class_of;
                    let reps = &reps;
                    scope.spawn(move || {
                        let mut scratch = ExplainScratch::new();
                        let mut keys: u64 = 0;
                        loop {
                            let start = cursor.fetch_add(stripe, Ordering::Relaxed);
                            if start >= n_classes {
                                break;
                            }
                            for c in start..(start + stripe).min(n_classes) {
                                #[cfg(test)]
                                class_of
                                    .iter()
                                    .enumerate()
                                    .filter(|&(_, &cc)| cc as usize == c)
                                    .for_each(|(row, _)| trap(row));
                                let res = explain_rep(reps[c] as usize, &mut scratch);
                                keys += u64::from(res.is_ok());
                                let _ = slots[c].set(res);
                            }
                        }
                        cce_obs::counter!("cce_batch_worker_keys_total").add(keys);
                    })
                })
                .collect();
            for h in handles {
                if h.join().is_err() {
                    cce_obs::counter!("cce_parallel_worker_panics_total").inc();
                }
            }
        });
        // Fan classes back out to rows, in row order. A class left unset
        // by a dead worker is recovered here with each of its rows
        // isolated, so only a genuinely poisoned target loses its key.
        let mut recovery_scratch = ExplainScratch::new();
        let mut out = Vec::with_capacity(n);
        for (r, &class) in class_of.iter().enumerate() {
            let c = class as usize;
            match slots[c].get() {
                Some(Ok(k)) => out.push((r, k.clone())),
                Some(Err(_)) => {}
                None => {
                    let attempt = catch_unwind(AssertUnwindSafe(|| {
                        #[cfg(test)]
                        trap(r);
                        explain_rep(reps[c] as usize, &mut recovery_scratch)
                    }));
                    match attempt {
                        Ok(Ok(k)) => out.push((r, k)),
                        Ok(Err(_)) => {}
                        Err(_) => {
                            cce_obs::counter!("cce_explain_errors_total", "kind" => "panic").inc();
                        }
                    }
                }
            }
        }
        timer.stop();
        out
    }

    /// Context-relative Shapley importance for the context row `target`
    /// (§8 future work (a)); sampled estimator, seeded from the config.
    ///
    /// # Errors
    /// Standard context/target validation failures.
    pub fn importance(&self, target: usize) -> Result<Vec<f64>, ExplainError> {
        crate::importance::shapley_sampled(
            &self.ctx,
            target,
            crate::importance::ImportanceParams {
                seed: self.config.seed,
                ..Default::default()
            },
        )
    }

    /// A pattern-level summary of the whole context (§8 future work (b)),
    /// every pattern α-conformant at the configured bound.
    ///
    /// # Errors
    /// [`ExplainError::EmptyContext`] when nothing was recorded.
    pub fn summarize(&self) -> Result<crate::patterns::RelativeSummary, ExplainError> {
        crate::patterns::summarize(
            &self.ctx,
            crate::patterns::SummaryParams {
                alpha: self.config.alpha,
                ..Default::default()
            },
        )
    }

    /// A drift monitor configured like this CCE instance (§7.4): feed it
    /// the ongoing prediction stream to watch for accuracy dips.
    ///
    /// # Errors
    /// [`ExplainError::InvalidConfig`] if `panel_size` or `sample_every`
    /// is zero.
    pub fn drift_monitor(
        &self,
        panel_size: usize,
        sample_every: usize,
    ) -> Result<crate::DriftMonitor, ExplainError> {
        crate::DriftMonitor::new(
            self.config.alpha,
            panel_size,
            sample_every,
            self.config.seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cce_dataset::{synth, BinSpec};
    use cce_model::{Gbdt, GbdtParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Target index `explain_all_parallel` panics on (test-only fault
    /// injection); `usize::MAX` disarms it.
    pub(super) static PANIC_TARGET: std::sync::atomic::AtomicUsize =
        std::sync::atomic::AtomicUsize::new(usize::MAX);

    /// Serializes the tests that touch [`PANIC_TARGET`] so concurrent
    /// parallel-explain tests never see an armed trap.
    fn panic_trap_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn setup() -> Cce {
        let raw = synth::loan::generate(300, 7);
        let ds = raw.encode(&BinSpec::uniform(8));
        let (train, infer) = ds.split(0.7, &mut StdRng::seed_from_u64(1));
        let model = Gbdt::train(&train, &GbdtParams::fast(), 0);
        let ctx = Context::from_model(&infer, &model);
        Cce::with_context(ctx, CceConfig::default())
    }

    #[test]
    fn explain_row_yields_valid_key() {
        let cce = setup();
        let key = cce.explain_row(0).unwrap();
        assert!(cce.context().is_alpha_key(key.features(), 0, Alpha::ONE));
    }

    #[test]
    fn explain_instance_locates_row() {
        let cce = setup();
        let x = cce.context().instance(5).clone();
        let by_instance = cce.explain_instance(&x).unwrap();
        // Row 5 may not be the first occurrence of x; both must be valid.
        assert!(!by_instance.features().is_empty() || by_instance.succinctness() == 0);
    }

    #[test]
    fn explain_unknown_instance_fails() {
        let cce = setup();
        let n = cce.context().schema().n_features();
        // A value outside every feature's domain cannot be in the context.
        let ghost = Instance::new(vec![u32::MAX; n]);
        assert_eq!(
            cce.explain_instance(&ghost),
            Err(ExplainError::UnknownInstance)
        );
    }

    #[test]
    fn explain_instance_lookup_stays_coherent_after_record() {
        let mut cce = setup();
        let n = cce.context().schema().n_features();
        let ghost = Instance::new(vec![u32::MAX; n]);
        // Build the lookup, prove the instance is unknown...
        assert_eq!(
            cce.explain_instance(&ghost),
            Err(ExplainError::UnknownInstance)
        );
        // ...then record it: the warm lookup must see the new row.
        cce.record(ghost.clone(), Label(0)).unwrap();
        assert!(cce.explain_instance(&ghost).is_ok());
        // After recording a duplicate, the incrementally-updated lookup
        // must agree with a from-scratch rebuild (first occurrence wins
        // in both).
        let first = cce.context().instance(0).clone();
        cce.record(first.clone(), Label(1)).unwrap();
        let warm = cce.explain_instance(&first);
        let fresh = Cce::with_context(cce.context().clone(), cce.config());
        assert_eq!(fresh.explain_instance(&first), warm);
        // And a wrong-width record still fails without poisoning the map.
        assert!(cce.record(Instance::new(vec![0]), Label(0)).is_err());
        assert_eq!(cce.explain_instance(&first), warm);
    }

    #[test]
    fn record_grows_context() {
        let mut cce = setup();
        let before = cce.context().len();
        let x = cce.context().instance(0).clone();
        cce.record(x, Label(0)).unwrap();
        assert_eq!(cce.context().len(), before + 1);
    }

    #[test]
    fn explain_all_covers_most_rows() {
        let cce = setup();
        let keys = cce.explain_all();
        assert!(keys.len() as f64 >= cce.context().len() as f64 * 0.95);
        for (t, k) in keys.iter().take(20) {
            assert!(cce.context().is_alpha_key(k.features(), *t, Alpha::ONE));
        }
    }

    #[test]
    fn parallel_explain_matches_sequential() {
        let _guard = panic_trap_lock();
        let cce = setup();
        let seq = cce.explain_all();
        for threads in [1usize, 2, 4] {
            let par = cce.explain_all_parallel(threads);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    /// A duplicate-heavy context: the base context plus same-prediction
    /// twins of every 3rd row and flipped-prediction twins of every 11th,
    /// exercising both memo sharing and memoized error classes.
    fn setup_with_duplicates() -> Cce {
        let base = setup();
        let mut ctx = base.context().clone();
        for t in (0..base.context().len()).step_by(3) {
            let x = base.context().instance(t).clone();
            ctx.push(x, base.context().prediction(t)).unwrap();
        }
        for t in (0..base.context().len()).step_by(11) {
            let x = base.context().instance(t).clone();
            let flipped = Label(u32::from(base.context().prediction(t).0 == 0));
            ctx.push(x, flipped).unwrap();
        }
        Cce::with_context(
            ctx,
            CceConfig {
                alpha: Alpha::new(0.95).unwrap(),
                ..CceConfig::default()
            },
        )
    }

    #[test]
    fn work_stealing_is_deterministic_across_thread_counts() {
        let _guard = panic_trap_lock();
        let cce = setup_with_duplicates();
        // The sequential path is memo-free, so this differentially checks
        // memoization + work stealing against per-row recomputation.
        let seq = cce.explain_all();
        for threads in [1usize, 2, 4, 8] {
            assert_eq!(cce.explain_all_parallel(threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn memoized_twins_get_identical_keys() {
        let _guard = panic_trap_lock();
        let cce = setup_with_duplicates();
        let keys: std::collections::HashMap<usize, RelativeKey> =
            cce.explain_all_parallel(4).into_iter().collect();
        let (reps, class_of) = cce.context().duplicate_classes();
        for r in 0..cce.context().len() {
            let rep = reps[class_of[r] as usize] as usize;
            assert_eq!(keys.get(&r), keys.get(&rep), "row {r} vs rep {rep}");
        }
    }

    #[test]
    fn parallel_explain_clamps_zero_threads() {
        let _guard = panic_trap_lock();
        let cce = setup();
        // Previously an assert; now clamped to one worker.
        assert_eq!(cce.explain_all_parallel(0), cce.explain_all());
    }

    #[test]
    fn parallel_explain_survives_worker_panic() {
        let _guard = panic_trap_lock();
        let cce = setup();
        let seq = cce.explain_all();
        // Quiet the expected worker-panic backtraces for this test only.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        PANIC_TARGET.store(7, std::sync::atomic::Ordering::Relaxed);
        let par = cce.explain_all_parallel(4);
        PANIC_TARGET.store(usize::MAX, std::sync::atomic::Ordering::Relaxed);
        std::panic::set_hook(hook);
        // Only target 7 may be missing; every other key survives intact.
        let expect: Vec<_> = seq.iter().filter(|(t, _)| *t != 7).cloned().collect();
        assert_eq!(par, expect);
    }

    #[test]
    fn parallel_explain_handles_empty_context() {
        let cce = setup();
        let empty = Cce::with_context(
            Context::empty(cce.context().schema_arc()),
            CceConfig::default(),
        );
        assert!(empty.explain_all_parallel(4).is_empty());
    }

    #[test]
    fn online_mode_replays_the_stream() {
        let batch = setup();
        let online = Cce::with_context(
            batch.context().clone(),
            CceConfig {
                mode: Mode::Online,
                ..CceConfig::default()
            },
        );
        let (kb, ko) = (
            batch.explain_row(0).unwrap(),
            online.explain_row(0).unwrap(),
        );
        // Both are valid keys; the online one is coherent-streaming and
        // thus no more succinct than the batch key.
        assert!(batch.context().is_alpha_key(kb.features(), 0, Alpha::ONE));
        assert!(batch.context().is_alpha_key(ko.features(), 0, Alpha::ONE));
        assert!(ko.succinctness() >= kb.succinctness());
    }

    #[test]
    fn facade_exposes_future_work_apis() {
        let cce = setup();
        let phi = cce.importance(0).unwrap();
        assert_eq!(phi.len(), cce.context().schema().n_features());
        let summary = cce.summarize().unwrap();
        assert!(!summary.is_empty());
        for p in summary.patterns() {
            assert_eq!(p.precision, 1.0, "α = 1 patterns are exact");
        }
        let mut dm = cce.drift_monitor(4, 10).unwrap();
        for t in 0..cce.context().len().min(50) {
            dm.observe(
                cce.context().instance(t).clone(),
                cce.context().prediction(t),
            );
        }
        assert!(dm.n_seen() > 0);
    }

    #[test]
    fn monitors_share_config() {
        let cce = setup();
        let x0 = cce.context().instance(0).clone();
        let p0 = cce.context().prediction(0);
        let m = cce.monitor(x0.clone(), p0);
        assert_eq!(m.succinctness(), 0);
        let uni: Vec<_> = cce
            .context()
            .instances()
            .iter()
            .cloned()
            .zip(cce.context().predictions().iter().copied())
            .collect();
        let s = cce.monitor_with_universe(x0, p0, &uni);
        assert_eq!(s.succinctness(), 0);
    }
}
