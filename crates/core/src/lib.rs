//! Relative keys and the CCE client-centric feature-explanation framework.
//!
//! This crate is the paper's contribution, implemented in full:
//!
//! * [`Context`] — a set of instances with their recorded predictions, the
//!   "context" that relative keys are defined against (§3.1). Building it
//!   requires only `(instance, prediction)` pairs collected during model
//!   serving — **never** the model itself.
//! * [`RelativeKey`] / [`Alpha`] — α-conformant relative keys: feature sets
//!   whose rule-based explanation semantics holds over at least an
//!   α-fraction of the context.
//! * [`Srk`] — the greedy batch algorithm (Algorithm 1): polynomial time,
//!   and its output is provably `ln(α·|I|)`-bounded (Lemma 3).
//! * [`OsrkMonitor`] — the randomized online monitor (Algorithm 2):
//!   maintains a coherent (`Eₜ ⊆ Eₜ₊₁`) α-conformant key as instances
//!   stream in, in `O(n log n)` per arrival, `(log t · log n)`-competitive.
//! * [`SsrkMonitor`] — the deterministic online monitor for static-feature
//!   universes (Algorithm 3), `(log m · log n)`-competitive, driven by a
//!   log-domain potential function.
//! * [`Cce`] — the framework facade (§6): batch and online modes, sliding
//!   windows for dynamic models ([`window`]) and accuracy-dip monitoring
//!   ([`monitor`], §7.4).
//! * [`verify`] — an exact (exponential) minimum-key solver used by tests
//!   and benchmarks to validate the approximation guarantees.
//! * [`persist`] — crash safety for the online monitors: checksummed
//!   snapshots, a write-ahead log of arrivals, atomic checkpoint
//!   rotation, and a fault-injection harness proving byte-identical
//!   recovery.
//!
//! Beyond the paper's published algorithms, the crate implements both of
//! its §8 future-work directions: [`importance`] (context-relative Shapley
//! values with an online monitor) and [`patterns`] (pattern-level
//! summaries relative to a context, with per-pattern conformity bounds).
//!
//! Computing a most-succinct relative key is NP-complete (Theorem 1); the
//! algorithms here implement the paper's provable approximations.
//!
//! The hot word-level loops run on runtime-dispatched SIMD kernels
//! ([`kernels`]): AVX2 on `x86_64`, NEON on `aarch64`, with a portable
//! scalar oracle as fallback (force it with `CCE_KERNELS=scalar`). The
//! crate denies `unsafe_code` globally; the only `unsafe` lives in the
//! `kernels` SIMD/stripe submodules behind a safe vtable (see the safety
//! argument in [`kernels`]).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alpha;
pub mod cce;
pub mod context;
pub mod engine;
pub mod error;
pub mod importance;
pub mod index;
pub mod kernels;
pub mod key;
pub mod monitor;
pub mod osrk;
pub mod pagestore;
pub mod patterns;
pub mod persist;
pub mod recorder;
pub mod srk;
pub mod ssrk;
pub mod verify;
pub mod window;

pub use alpha::Alpha;
pub use cce::{Cce, CceConfig, Mode};
pub use context::Context;
pub use engine::BatchEngine;
pub use error::ExplainError;
pub use importance::{shapley_exact, shapley_sampled, ImportanceParams, OnlineImportance};
pub use index::{ContextIndex, ExplainScratch};
pub use kernels::{Kernels, StripeConfig};
pub use key::RelativeKey;
pub use monitor::DriftMonitor;
pub use osrk::{OsrkMonitor, PickRule};
pub use pagestore::{write_store, CacheStats, LruPageCache, PageStore, PagedContextIndex};
pub use patterns::{summarize, RelativePattern, RelativeSummary, SummaryParams};
pub use persist::{Durable, PersistError, PersistState, Replayable};
pub use recorder::Recorder;
pub use srk::{BudgetedKey, ExplainStatus, Srk, WorkBudget};
pub use ssrk::SsrkMonitor;
pub use window::{ResolutionPolicy, SlidingWindow};
