//! Algorithm 3 — SSRK: deterministic online monitoring for static
//! features.
//!
//! When the universe `𝕌` of possible instances and their predictions is
//! known in advance (e.g. materialized recommendation scores, §5.3) and
//! only the *arrival order* is online, a deterministic monitor becomes
//! possible despite Theorem 4: SSRK is `(log m · log n)`-competitive
//! (Theorem 6).
//!
//! SSRK drives key growth with a potential function
//! `Φ = Σ_{xⱼ∈U} m^{2μⱼ}` over the not-yet-covered differing-prediction
//! universe instances. `m^{2μ}` overflows `f64` for any realistic `m`, so
//! we keep Φ in **log-domain** (log-sum-exp); the `ablation` bench
//! demonstrates the naive form failing.

use cce_dataset::{Instance, Label};

use crate::alpha::Alpha;
use crate::error::ExplainError;
use crate::key::RelativeKey;

/// The deterministic online key monitor with a known universe.
#[derive(Debug, Clone)]
pub struct SsrkMonitor {
    x0: Instance,
    pred0: Label,
    alpha: Alpha,
    /// Universe size `m` (all instances, both prediction classes).
    m: usize,
    /// Universe instances with predictions different from the target
    /// (`U = 𝕌^c_{M(x₀)}` at initialization).
    uni: Vec<Instance>,
    /// Per-feature importance weights `wᵢ` (init `1/2n`).
    weights: Vec<f64>,
    /// Indices into `uni` that still agree with `x0` on the current key —
    /// the algorithm's evolving `U`.
    u_live: Vec<u32>,
    /// Cached aggregated scores `μⱼ` for every `uni` instance.
    mu: Vec<f64>,
    /// Cached differing-feature sets `Sⱼ`.
    s_sets: Vec<Vec<u16>>,
    /// Inverted index: feature `i` → universe instances `j` with `i ∈ Sⱼ`.
    /// Lets weight augmentation touch exactly the `μⱼ` that change instead
    /// of rescanning every live `Sⱼ`.
    inv: Vec<Vec<u32>>,
    /// `live_mask[j]` ⇔ `j ∈ u_live` — O(1) membership for the
    /// incremental `μⱼ` updates.
    live_mask: Vec<bool>,
    key: Vec<usize>,
    in_key: Vec<bool>,
    /// Log-domain potential `ln Φ`.
    log_phi: f64,
    // Context bookkeeping (identical role to OSRK's).
    n_seen: usize,
    live: Vec<Instance>,
}

impl SsrkMonitor {
    /// Offline initialization (Algorithm 3 lines 1-5) over a universe of
    /// `(instance, prediction)` pairs.
    ///
    /// # Panics
    /// Panics if any universe instance width differs from the target's.
    pub fn new(x0: Instance, pred0: Label, alpha: Alpha, universe: &[(Instance, Label)]) -> Self {
        let n = x0.len();
        assert!(
            universe.iter().all(|(x, _)| x.len() == n),
            "universe width mismatch"
        );
        let m = universe.len();
        let weights = vec![1.0 / (2.0 * n as f64); n];
        let uni: Vec<Instance> = universe
            .iter()
            .filter(|(_, p)| *p != pred0)
            .map(|(x, _)| x.clone())
            .collect();
        let s_sets: Vec<Vec<u16>> = uni
            .iter()
            .map(|x| {
                x.differing_features(&x0)
                    .into_iter()
                    .map(|f| f as u16)
                    .collect()
            })
            .collect();
        let mu: Vec<f64> = s_sets
            .iter()
            .map(|s| s.iter().map(|&i| weights[i as usize]).sum())
            .collect();
        let u_live: Vec<u32> = (0..uni.len() as u32).collect();
        let mut inv: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (j, s) in s_sets.iter().enumerate() {
            for &i in s {
                inv[i as usize].push(j as u32);
            }
        }
        let live_mask = vec![true; uni.len()];
        let log_phi = log_potential(m, &mu, &u_live);
        Self {
            x0,
            pred0,
            alpha,
            m,
            uni,
            weights,
            u_live,
            mu,
            s_sets,
            inv,
            live_mask,
            key: Vec::new(),
            in_key: vec![false; n],
            log_phi,
            n_seen: 0,
            live: Vec::new(),
        }
    }

    /// The current key, in pick order.
    pub fn key(&self) -> &[usize] {
        &self.key
    }

    /// Current succinctness.
    pub fn succinctness(&self) -> usize {
        self.key.len()
    }

    /// Instances observed so far.
    pub fn n_seen(&self) -> usize {
        self.n_seen
    }

    /// Current live violators over the arrived context.
    pub fn n_violators(&self) -> usize {
        self.live.len()
    }

    /// The current log-domain potential `ln Φ`.
    pub fn log_potential(&self) -> f64 {
        self.log_phi
    }

    /// Recomputes `ln Φ` from scratch over the live universe (the cached
    /// value is available via [`SsrkMonitor::log_potential`]); exposed for
    /// the ablation benchmark.
    pub fn recompute_log_potential(&self) -> f64 {
        log_potential(self.m, &self.mu, &self.u_live)
    }

    /// The naive (non-log) potential `Φ = Σ m^{2μⱼ}` — overflows to
    /// `f64::INFINITY` for moderate universes; exposed for the ablation
    /// benchmark only.
    pub fn naive_potential(&self) -> f64 {
        self.u_live
            .iter()
            .map(|&j| (self.m as f64).powf(2.0 * self.mu[j as usize]))
            .sum()
    }

    /// Recomputes `μⱼ = Σ_{i∈Sⱼ} wᵢ` from scratch for every still-live
    /// universe instance; dead instances keep their cached value (stale by
    /// design — only live instances enter the potential). Exposed for
    /// differential tests of the incremental weight-augmentation update.
    pub fn recompute_mu(&self) -> Vec<f64> {
        let mut out = self.mu.clone();
        for &j in &self.u_live {
            out[j as usize] = self.s_sets[j as usize]
                .iter()
                .map(|&i| self.weights[i as usize])
                .sum();
        }
        out
    }

    /// Largest absolute deviation between the cached incremental `μⱼ` and
    /// a from-scratch recomputation over the live universe (float drift of
    /// the incremental path; 0 when the cache is exact).
    pub fn max_live_mu_drift(&self) -> f64 {
        let fresh = self.recompute_mu();
        self.u_live
            .iter()
            .map(|&j| (self.mu[j as usize] - fresh[j as usize]).abs())
            .fold(0.0, f64::max)
    }

    /// Snapshot of the current key.
    pub fn to_relative_key(&self) -> RelativeKey {
        let achieved = if self.n_seen == 0 {
            1.0
        } else {
            1.0 - self.live.len() as f64 / self.n_seen as f64
        };
        RelativeKey::new(self.key.clone(), self.alpha, achieved)
    }

    /// Processes one arrival (Algorithm 3 lines 6-17) and returns the
    /// updated key.
    ///
    /// # Errors
    /// * [`ExplainError::WidthMismatch`] for a wrong-width instance;
    /// * [`ExplainError::NoConformantKey`] for contradictions beyond the
    ///   tolerance.
    pub fn observe(&mut self, x: Instance, pred: Label) -> Result<&[usize], ExplainError> {
        if x.len() != self.x0.len() {
            return Err(ExplainError::WidthMismatch {
                expected: self.x0.len(),
                got: x.len(),
            });
        }
        cce_obs::counter!("cce_monitor_arrivals_total", "algo" => "ssrk").inc();
        self.n_seen += 1;
        if pred == self.pred0 {
            // Line 7: the key never changes — but report lingering
            // contradictions (the only way a same-prediction arrival can
            // observe an invalid state).
            let tolerance = self.alpha.tolerance(self.n_seen);
            if self.live.len() > tolerance {
                return Err(ExplainError::NoConformantKey {
                    contradictions: self.live.len(),
                    tolerance,
                });
            }
            return Ok(&self.key);
        }
        if x.agrees_on(&self.x0, &self.key) {
            self.live.push(x.clone());
            cce_obs::gauge!("cce_monitor_live_violators", "algo" => "ssrk")
                .set(self.live.len() as i64);
        }
        let tolerance = self.alpha.tolerance(self.n_seen);
        if self.live.len() <= tolerance {
            return Ok(&self.key); // line 8 condition not met
        }

        let mut s_t: Vec<usize> = x
            .differing_features(&self.x0)
            .into_iter()
            .filter(|&f| !self.in_key[f])
            .collect();
        if s_t.is_empty() {
            return Err(ExplainError::NoConformantKey {
                contradictions: self.live.len(),
                tolerance,
            });
        }

        // Line 9-10: weight augmentation by the minimal power of two that
        // pushes the arrival's aggregated score above 1.
        let mu_t: f64 = s_t.iter().map(|&i| self.weights[i]).sum();
        let mut k = 0i32;
        while 2f64.powi(k) * mu_t <= 1.0 && k < 64 {
            k += 1;
        }
        if 2f64.powi(k) * mu_t <= 1.0 {
            // Weights start at 1/2n and only grow, so k ≤ ⌈log₂ 2n⌉ always
            // suffices; hitting the cap means the weight state is corrupt.
            cce_obs::counter!("cce_ssrk_invariant_violations_total").inc();
            debug_assert!(
                false,
                "weight augmentation capped at 2^64 without pushing μₜ = {mu_t} above 1"
            );
        }
        if k > 0 {
            cce_obs::counter!("cce_monitor_weight_doublings_total", "algo" => "ssrk").add(k as u64);
            let factor = 2f64.powi(k);
            // Update each changed weight and push the delta through the
            // inverted index: only the live μⱼ with i ∈ Sⱼ change, and by
            // exactly (factor − 1)·wᵢ_old — no rescan of every Sⱼ.
            for &i in &s_t {
                let w_old = self.weights[i];
                self.weights[i] = w_old * factor;
                let delta = (factor - 1.0) * w_old;
                for &j in &self.inv[i] {
                    if self.live_mask[j as usize] {
                        self.mu[j as usize] += delta;
                    }
                }
            }
        }

        // Lines 11-16: greedily add features while the updated potential
        // exceeds the stored one. We additionally keep looping until the
        // context is α-conformant again — covering the arrival requires at
        // least one pick from Sₜ, which the strictly-increased potential
        // guarantees the paper's loop makes as well.
        let mut log_phi_new = log_potential(self.m, &self.mu, &self.u_live);
        while (log_phi_new > self.log_phi + 1e-12 || self.live.len() > tolerance) && !s_t.is_empty()
        {
            // Line 13: argmin over Sₜ of surviving universe violators.
            // (Integer counts — total order, no NaN hazard unlike the
            // float-weight pick OSRK needs total_cmp for.)
            let x0 = &self.x0;
            let best = s_t
                .iter()
                .copied()
                .min_by_key(|&i| {
                    self.u_live
                        .iter()
                        .filter(|&&j| self.uni[j as usize][i] == x0[i])
                        .count()
                })
                .expect("s_t non-empty");
            // Line 14-15: commit the feature, shrink U.
            self.in_key[best] = true;
            self.key.push(best);
            cce_obs::counter!("cce_monitor_key_growth_total", "algo" => "ssrk").inc();
            s_t.retain(|&f| f != best);
            let x0 = &self.x0;
            let uni = &self.uni;
            let live_mask = &mut self.live_mask;
            self.u_live.retain(|&j| {
                let keep = uni[j as usize][best] == x0[best];
                if !keep {
                    live_mask[j as usize] = false;
                }
                keep
            });
            self.live.retain(|v| v[best] == x0[best]);
            cce_obs::gauge!("cce_monitor_live_violators", "algo" => "ssrk")
                .set(self.live.len() as i64);
            // Line 16: recompute Φ' over the shrunk U.
            log_phi_new = log_potential(self.m, &self.mu, &self.u_live);
        }
        self.log_phi = log_phi_new; // line 17

        if self.live.len() > tolerance {
            return Err(ExplainError::NoConformantKey {
                contradictions: self.live.len(),
                tolerance,
            });
        }
        Ok(&self.key)
    }
}

impl crate::persist::PersistState for SsrkMonitor {
    const TYPE_TAG: u8 = 3;

    fn encode_state(&self, enc: &mut crate::persist::Enc) {
        enc.instance(&self.x0);
        enc.label(self.pred0);
        enc.f64(self.alpha.get());
        enc.usize(self.m);
        enc.usize(self.uni.len());
        for x in &self.uni {
            enc.instance(x);
        }
        enc.f64s(&self.weights);
        enc.u32s(&self.u_live);
        // Full μ vector, dead entries included: they are stale by design
        // and must round-trip bit-exactly, not be recomputed.
        enc.f64s(&self.mu);
        enc.usizes(&self.key);
        enc.f64(self.log_phi);
        enc.usize(self.n_seen);
        enc.usize(self.live.len());
        for v in &self.live {
            enc.instance(v);
        }
    }

    fn decode_state(
        dec: &mut crate::persist::Dec<'_>,
    ) -> Result<Self, crate::persist::PersistError> {
        use crate::persist::PersistError;
        let x0 = dec.instance()?;
        let n = x0.len();
        let pred0 = dec.label()?;
        let alpha = Alpha::new(dec.f64()?).map_err(|_| PersistError::corrupt("invalid alpha"))?;
        let m = dec.usize()?;
        let n_uni = dec.len()?;
        let mut uni = Vec::with_capacity(n_uni);
        for _ in 0..n_uni {
            let x = dec.instance()?;
            if x.len() != n {
                return Err(PersistError::corrupt("universe width mismatch"));
            }
            uni.push(x);
        }
        let weights = dec.f64s()?;
        if weights.len() != n {
            return Err(PersistError::corrupt("weight vector width mismatch"));
        }
        let u_live = dec.u32s()?;
        if u_live.iter().any(|&j| j as usize >= uni.len()) {
            return Err(PersistError::corrupt("live universe index out of range"));
        }
        let mu = dec.f64s()?;
        if mu.len() != uni.len() {
            return Err(PersistError::corrupt("mu length mismatch"));
        }
        let key = dec.usizes()?;
        if key.iter().any(|&f| f >= n) {
            return Err(PersistError::corrupt("key feature out of range"));
        }
        let log_phi = dec.f64()?;
        let n_seen = dec.usize()?;
        let n_live = dec.len()?;
        let mut live = Vec::with_capacity(n_live);
        for _ in 0..n_live {
            let v = dec.instance()?;
            if v.len() != n {
                return Err(PersistError::corrupt("live violator width mismatch"));
            }
            live.push(v);
        }
        // Derived caches (Sⱼ, inverted index, masks) are pure functions
        // of the persisted fields — rebuild instead of storing.
        let s_sets: Vec<Vec<u16>> = uni
            .iter()
            .map(|x| {
                x.differing_features(&x0)
                    .into_iter()
                    .map(|f| f as u16)
                    .collect()
            })
            .collect();
        let mut inv: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (j, s) in s_sets.iter().enumerate() {
            for &i in s {
                inv[i as usize].push(j as u32);
            }
        }
        let mut live_mask = vec![false; uni.len()];
        for &j in &u_live {
            live_mask[j as usize] = true;
        }
        let mut in_key = vec![false; n];
        for &f in &key {
            in_key[f] = true;
        }
        Ok(Self {
            x0,
            pred0,
            alpha,
            m,
            uni,
            weights,
            u_live,
            mu,
            s_sets,
            inv,
            live_mask,
            key,
            in_key,
            log_phi,
            n_seen,
            live,
        })
    }
}

impl crate::persist::Replayable for SsrkMonitor {
    fn replay(&mut self, x: Instance, pred: Label) {
        let _ = self.observe(x, pred);
    }
}

/// `ln Σ_{j∈live} m^{2μⱼ}` computed stably via log-sum-exp.
fn log_potential(m: usize, mu: &[f64], live: &[u32]) -> f64 {
    if live.is_empty() {
        return f64::NEG_INFINITY;
    }
    let ln_m = (m.max(2) as f64).ln();
    let terms = live.iter().map(|&j| 2.0 * mu[j as usize] * ln_m);
    let max = terms.clone().fold(f64::NEG_INFINITY, f64::max);
    let sum: f64 = terms.map(|t| (t - max).exp()).sum();
    max + sum.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cce_dataset::{synth, BinSpec, Dataset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn universe_of(ds: &Dataset) -> Vec<(Instance, Label)> {
        ds.iter().map(|(x, y)| (x.clone(), y)).collect()
    }

    #[test]
    fn same_prediction_never_changes_key() {
        let raw = synth::loan::generate(100, 2);
        let ds = raw.encode(&BinSpec::uniform(6));
        let uni = universe_of(&ds);
        let mut m = SsrkMonitor::new(ds.instance(0).clone(), ds.label(0), Alpha::ONE, &uni);
        let p0 = ds.label(0);
        for (x, y) in ds.iter().filter(|(_, y)| *y == p0) {
            m.observe(x.clone(), y).unwrap();
            assert_eq!(m.succinctness(), 0);
        }
    }

    #[test]
    fn keys_stay_valid_and_coherent_over_stream() {
        let raw = synth::loan::generate(250, 4);
        let ds = raw.encode(&BinSpec::uniform(8));
        let uni = universe_of(&ds);
        let mut m = SsrkMonitor::new(ds.instance(0).clone(), ds.label(0), Alpha::ONE, &uni);
        let mut ctx = crate::Context::from_recorded(&ds.head(1));
        let mut prev: Vec<usize> = Vec::new();
        for (x, y) in ds.iter().skip(1) {
            m.observe(x.clone(), y).unwrap();
            ctx.push(x.clone(), y).unwrap();
            assert!(
                ctx.is_alpha_key(m.key(), 0, Alpha::ONE),
                "|I|={}",
                ctx.len()
            );
            assert!(
                prev.iter().all(|f| m.key().contains(f)),
                "coherence violated"
            );
            prev = m.key().to_vec();
        }
    }

    #[test]
    fn deterministic_no_seed_needed() {
        let raw = synth::compas::generate(200, 8);
        let ds = raw.encode(&BinSpec::uniform(8));
        let uni = universe_of(&ds);
        let run = || {
            let mut m = SsrkMonitor::new(ds.instance(0).clone(), ds.label(0), Alpha::ONE, &uni);
            for (x, y) in ds.iter().skip(1) {
                let _ = m.observe(x.clone(), y);
            }
            m.key().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn log_potential_is_finite_where_naive_overflows() {
        // A large universe with inflated weights: the naive potential
        // overflows while the log-domain one stays finite.
        let mu = vec![50.0; 4000];
        let live: Vec<u32> = (0..4000).collect();
        let lp = log_potential(4000, &mu, &live);
        assert!(lp.is_finite());
        // 4000^100 ≈ 10^360 ≫ f64::MAX ≈ 1.8·10^308.
        let naive: f64 = live.iter().map(|_| 4000f64.powf(100.0)).sum();
        assert!(naive.is_infinite());
    }

    #[test]
    fn relaxed_alpha_produces_shorter_or_equal_keys() {
        let raw = synth::german::generate(300, 9);
        let ds = raw.encode(&BinSpec::uniform(8));
        let uni = universe_of(&ds);
        let run = |alpha: Alpha| {
            let mut m = SsrkMonitor::new(ds.instance(0).clone(), ds.label(0), alpha, &uni);
            for (x, y) in ds.iter().skip(1) {
                let _ = m.observe(x.clone(), y);
            }
            m.succinctness()
        };
        let strict = run(Alpha::ONE);
        let relaxed = run(Alpha::new(0.9).unwrap());
        assert!(relaxed <= strict, "relaxed={relaxed} strict={strict}");
    }

    #[test]
    fn contradiction_detected() {
        let x0 = Instance::new(vec![0, 1]);
        let uni = vec![(x0.clone(), Label(1))];
        let mut m = SsrkMonitor::new(x0.clone(), Label(0), Alpha::ONE, &uni);
        assert!(matches!(
            m.observe(x0, Label(1)),
            Err(ExplainError::NoConformantKey { .. })
        ));
    }

    #[test]
    fn incremental_mu_matches_full_recompute() {
        // Differential test of the inverted-index weight augmentation: at
        // every arrival the cached μⱼ must agree with a from-scratch
        // recomputation (the pre-optimization rescan) over the live
        // universe, up to float-summation-order drift.
        let raw = synth::german::generate(250, 11);
        let ds = raw.encode(&BinSpec::uniform(8));
        let uni = universe_of(&ds);
        let mut m = SsrkMonitor::new(ds.instance(0).clone(), ds.label(0), Alpha::ONE, &uni);
        let mut doubled = false;
        for (x, y) in ds.iter().skip(1) {
            let before = m.succinctness();
            let _ = m.observe(x.clone(), y);
            doubled |= m.succinctness() > before;
            assert!(
                m.max_live_mu_drift() < 1e-9,
                "drift {}",
                m.max_live_mu_drift()
            );
        }
        assert!(doubled, "stream never exercised weight augmentation");
    }

    #[test]
    fn ssrk_typically_no_worse_than_osrk_on_average() {
        // §5.3: "in practice SSRK often outperforms OSRK in the quality of
        // relative keys". Check on a small panel (average, not per-case).
        let raw = synth::loan::generate(300, 14);
        let ds = raw.encode(&BinSpec::uniform(8));
        let uni = universe_of(&ds);
        let mut total_ssrk = 0usize;
        let mut total_osrk = 0usize;
        let mut rng = StdRng::seed_from_u64(5);
        use rand::Rng;
        for _ in 0..8 {
            let t = rng.gen_range(0..ds.len());
            let mut s = SsrkMonitor::new(ds.instance(t).clone(), ds.label(t), Alpha::ONE, &uni);
            let mut o =
                crate::OsrkMonitor::new(ds.instance(t).clone(), ds.label(t), Alpha::ONE, 42);
            for (i, (x, y)) in ds.iter().enumerate() {
                if i == t {
                    continue;
                }
                let _ = s.observe(x.clone(), y);
                let _ = o.observe(x.clone(), y);
            }
            total_ssrk += s.succinctness();
            total_osrk += o.succinctness();
        }
        assert!(
            total_ssrk <= total_osrk + 2,
            "ssrk={total_ssrk} osrk={total_osrk}"
        );
    }

    #[test]
    fn width_mismatch_rejected() {
        let x0 = Instance::new(vec![0, 1]);
        let mut m = SsrkMonitor::new(x0, Label(0), Alpha::ONE, &[]);
        assert!(m.observe(Instance::new(vec![0]), Label(1)).is_err());
    }
}
