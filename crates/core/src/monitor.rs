//! Serving-time model-performance monitoring via relative keys (§7.4).
//!
//! The paper's observation (Fig. 3l/3m): when a blackbox model starts
//! misbehaving — noise, drift, silent redeployment — the relative keys of
//! a panel of monitored instances *abnormally grow*, because new arrivals
//! contradict previously sufficient keys. Tracking mean succinctness over
//! the stream therefore exposes accuracy dips without any access to the
//! model or ground truth.

use cce_dataset::{Instance, Label};

use crate::alpha::Alpha;
use crate::error::ExplainError;
use crate::osrk::OsrkMonitor;

/// Tracks mean key succinctness of a panel of monitored instances over a
/// prediction stream and flags abnormal growth.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    alpha: Alpha,
    seed: u64,
    panel_size: usize,
    sample_every: usize,
    monitors: Vec<OsrkMonitor>,
    n_seen: usize,
    /// `(arrivals so far, mean succinctness)` samples.
    history: Vec<(usize, f64)>,
    /// Contradictions observed (also a drift signal).
    contradictions: usize,
}

impl DriftMonitor {
    /// Creates a monitor that adopts the first `panel_size` arrivals as
    /// its monitored panel and samples mean succinctness every
    /// `sample_every` arrivals.
    ///
    /// # Errors
    /// [`ExplainError::InvalidConfig`] if `panel_size == 0` or
    /// `sample_every == 0` — a long-running serving component must reject
    /// bad configuration as a value, not a panic.
    pub fn new(
        alpha: Alpha,
        panel_size: usize,
        sample_every: usize,
        seed: u64,
    ) -> Result<Self, ExplainError> {
        if panel_size == 0 {
            return Err(ExplainError::InvalidConfig {
                reason: "panel must be non-empty",
            });
        }
        if sample_every == 0 {
            return Err(ExplainError::InvalidConfig {
                reason: "sampling period must be positive",
            });
        }
        Ok(Self {
            alpha,
            seed,
            panel_size,
            sample_every,
            monitors: Vec::with_capacity(panel_size),
            n_seen: 0,
            history: Vec::new(),
            contradictions: 0,
        })
    }

    /// Feeds one serving-time observation.
    pub fn observe(&mut self, x: Instance, pred: Label) {
        self.n_seen += 1;
        // Adopt early arrivals as panel targets.
        if self.monitors.len() < self.panel_size {
            let idx = self.monitors.len() as u64;
            self.monitors.push(OsrkMonitor::new(
                x.clone(),
                pred,
                self.alpha,
                self.seed.wrapping_add(idx),
            ));
        }
        for m in &mut self.monitors {
            if m.observe(x.clone(), pred).is_err() {
                self.contradictions += 1;
            }
        }
        if self.n_seen.is_multiple_of(self.sample_every) {
            self.history.push((self.n_seen, self.mean_succinctness()));
        }
    }

    /// Current mean key succinctness over the panel.
    pub fn mean_succinctness(&self) -> f64 {
        if self.monitors.is_empty() {
            return 0.0;
        }
        self.monitors
            .iter()
            .map(|m| m.succinctness() as f64)
            .sum::<f64>()
            / self.monitors.len() as f64
    }

    /// The sampled `(arrivals, mean succinctness)` trajectory — the series
    /// plotted in Fig. 3l.
    pub fn trajectory(&self) -> &[(usize, f64)] {
        &self.history
    }

    /// Number of contradictions observed so far.
    pub fn contradictions(&self) -> usize {
        self.contradictions
    }

    /// Arrivals observed so far.
    pub fn n_seen(&self) -> usize {
        self.n_seen
    }

    /// Growth of recent mean succinctness relative to the early baseline:
    /// `recent / baseline`, where the baseline is the mean of the first
    /// `baseline_frac` of samples and "recent" is the mean of the last
    /// quarter. Returns 1.0 until enough samples exist.
    pub fn drift_score(&self, baseline_frac: f64) -> f64 {
        let n = self.history.len();
        if n < 4 {
            return 1.0;
        }
        let cut = ((n as f64) * baseline_frac.clamp(0.1, 0.9)).ceil() as usize;
        let base: f64 = self.history[..cut].iter().map(|&(_, s)| s).sum::<f64>() / cut as f64;
        let recent_from = n - (n / 4).max(1);
        let recent: f64 = self.history[recent_from..]
            .iter()
            .map(|&(_, s)| s)
            .sum::<f64>()
            / (n - recent_from) as f64;
        if base <= f64::EPSILON {
            if recent <= f64::EPSILON {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            recent / base
        }
    }

    /// True when succinctness grew by more than `factor` over the
    /// baseline — the paper's "abnormal increase" signal.
    pub fn drifted(&self, factor: f64) -> bool {
        self.drift_score(0.5) > factor
    }
}

impl crate::persist::PersistState for DriftMonitor {
    const TYPE_TAG: u8 = 5;

    fn encode_state(&self, enc: &mut crate::persist::Enc) {
        enc.f64(self.alpha.get());
        enc.u64(self.seed);
        enc.usize(self.panel_size);
        enc.usize(self.sample_every);
        enc.usize(self.monitors.len());
        for m in &self.monitors {
            m.encode_state(enc);
        }
        enc.usize(self.n_seen);
        enc.usize(self.history.len());
        for &(at, s) in &self.history {
            enc.usize(at);
            enc.f64(s);
        }
        enc.usize(self.contradictions);
    }

    fn decode_state(
        dec: &mut crate::persist::Dec<'_>,
    ) -> Result<Self, crate::persist::PersistError> {
        use crate::persist::PersistError;
        let alpha = Alpha::new(dec.f64()?).map_err(|_| PersistError::corrupt("invalid alpha"))?;
        let seed = dec.u64()?;
        let panel_size = dec.usize()?;
        let sample_every = dec.usize()?;
        if panel_size == 0 || sample_every == 0 {
            return Err(PersistError::corrupt("invalid drift monitor geometry"));
        }
        let n_mon = dec.len()?;
        if n_mon > panel_size {
            return Err(PersistError::corrupt("panel larger than its size bound"));
        }
        let mut monitors = Vec::with_capacity(panel_size);
        for _ in 0..n_mon {
            monitors.push(OsrkMonitor::decode_state(dec)?);
        }
        let n_seen = dec.usize()?;
        let n_hist = dec.len()?;
        let mut history = Vec::with_capacity(n_hist);
        for _ in 0..n_hist {
            let at = dec.usize()?;
            let s = dec.f64()?;
            history.push((at, s));
        }
        let contradictions = dec.usize()?;
        Ok(Self {
            alpha,
            seed,
            panel_size,
            sample_every,
            monitors,
            n_seen,
            history,
            contradictions,
        })
    }
}

impl crate::persist::Replayable for DriftMonitor {
    fn replay(&mut self, x: Instance, pred: Label) {
        self.observe(x, pred);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cce_dataset::synth::noise;
    use cce_dataset::{synth, BinSpec};
    use cce_model::{Gbdt, GbdtParams, Model};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stream(noisy: bool) -> (Vec<(Instance, Label)>, f64) {
        // Key growth saturates on clean streams only once they are long
        // enough; the drift signal needs that contrast (cf. Fig. 3l).
        let raw = synth::adult::generate(8000, 5);
        let ds = raw.encode(&BinSpec::uniform(10));
        let (train, mut infer) = ds.split(0.6, &mut StdRng::seed_from_u64(4));
        let model = Gbdt::train(&train, &GbdtParams::fast(), 0);
        if noisy {
            noise::randomize_tail(&mut infer, 0.6, &mut StdRng::seed_from_u64(9));
        }
        let preds = model.predict_all(infer.instances());
        let pairs = infer.instances().iter().cloned().zip(preds).collect();
        // True accuracy of the model over this stream (for reference).
        let acc = cce_model::eval::accuracy(&model, &infer);
        (pairs, acc)
    }

    #[test]
    fn clean_stream_does_not_drift() {
        let (pairs, _) = stream(false);
        let mut m = DriftMonitor::new(Alpha::ONE, 8, 20, 1).unwrap();
        for (x, p) in pairs {
            m.observe(x, p);
        }
        assert!(m.drift_score(0.5) < 1.6, "score={}", m.drift_score(0.5));
    }

    #[test]
    fn noisy_tail_raises_succinctness_growth() {
        // Fig. 3l: the streams share their first 60%; the noisy variant
        // perturbs the tail. The signal is key *growth after the noise
        // onset*, which should exceed the clean stream's residual growth.
        let (clean, _) = stream(false);
        let (noisy, _) = stream(true);
        let onset = (clean.len() as f64 * 0.6) as usize;
        let run = |pairs: Vec<(Instance, Label)>| {
            let mut m = DriftMonitor::new(Alpha::ONE, 12, 50, 1).unwrap();
            let mut at_onset = 0.0;
            for (i, (x, p)) in pairs.into_iter().enumerate() {
                if i == onset {
                    at_onset = m.mean_succinctness();
                }
                m.observe(x, p);
            }
            m.mean_succinctness() - at_onset
        };
        let g_clean = run(clean);
        let g_noisy = run(noisy);
        assert!(
            g_noisy > g_clean,
            "noise must inflate key growth: clean={g_clean} noisy={g_noisy}"
        );
    }

    #[test]
    fn trajectory_is_sampled() {
        let (pairs, _) = stream(false);
        let n = pairs.len();
        let mut m = DriftMonitor::new(Alpha::ONE, 4, 25, 2).unwrap();
        for (x, p) in pairs {
            m.observe(x, p);
        }
        assert_eq!(m.trajectory().len(), n / 25);
        assert_eq!(m.n_seen(), n);
        // Succinctness trajectory is non-decreasing (keys are coherent).
        let t = m.trajectory();
        for w in t.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9);
        }
    }

    #[test]
    fn drift_score_defaults_before_samples() {
        let m = DriftMonitor::new(Alpha::ONE, 2, 1000, 3).unwrap();
        assert_eq!(m.drift_score(0.5), 1.0);
        assert!(!m.drifted(1.2));
    }
}
