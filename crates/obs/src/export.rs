//! Snapshot exporters: JSONL and Prometheus text format.
//!
//! Both formats are hand-rolled over `std::io::Write` — this crate keeps
//! the workspace's zero-external-dependency guarantee.
//!
//! # JSONL
//!
//! One JSON object per line, one line per instrument:
//!
//! ```text
//! {"name":"cce_explain_keys_total","type":"counter","labels":{"algo":"srk"},"value":42}
//! {"name":"cce_batch_explain_ns","type":"histogram","labels":{},"count":3,"sum":91213,"buckets":[{"le":1023,"count":1},{"le":65535,"count":2}]}
//! ```
//!
//! Histogram `buckets` list only non-empty buckets; `le` is the
//! inclusive upper bound of the log₂ bucket (non-cumulative counts).
//!
//! # Prometheus
//!
//! The standard text exposition format; histograms emit cumulative
//! `_bucket{le="…"}` series plus `_sum` and `_count`.

use std::collections::BTreeMap;
use std::io::{self, Write};

use crate::instruments::Histogram;

/// The recorded value of one instrument at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Point-in-time level.
    Gauge(i64),
    /// Distribution: total count, sum, and per-bucket (non-cumulative)
    /// counts indexed like [`Histogram::bucket_of`].
    Histogram {
        /// Observations recorded.
        count: u64,
        /// Sum of observed values.
        sum: u64,
        /// One (possibly zero) count per log₂ bucket.
        buckets: Vec<u64>,
    },
}

/// One instrument in a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct SnapshotEntry {
    /// Family name (`cce_*`).
    pub name: String,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: &'static str,
    /// Sorted label pairs.
    pub labels: BTreeMap<String, String>,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// A point-in-time copy of a registry's instruments.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Instruments ordered by `(name, labels)`.
    pub entries: Vec<SnapshotEntry>,
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn labels_json(labels: &BTreeMap<String, String>) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json_escape(k, &mut out);
        out.push_str("\":\"");
        json_escape(v, &mut out);
        out.push('"');
    }
    out.push('}');
    out
}

impl Snapshot {
    /// Writes one JSON object per instrument, newline-separated.
    ///
    /// # Errors
    /// Propagates I/O failures of `w`.
    pub fn to_jsonl(&self, w: &mut impl Write) -> io::Result<()> {
        for e in &self.entries {
            let mut line = String::from("{\"name\":\"");
            json_escape(&e.name, &mut line);
            line.push_str("\",\"type\":\"");
            line.push_str(e.kind);
            line.push_str("\",\"labels\":");
            line.push_str(&labels_json(&e.labels));
            match &e.value {
                MetricValue::Counter(v) => {
                    line.push_str(&format!(",\"value\":{v}"));
                }
                MetricValue::Gauge(v) => {
                    line.push_str(&format!(",\"value\":{v}"));
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    line.push_str(&format!(",\"count\":{count},\"sum\":{sum},\"buckets\":["));
                    let mut first = true;
                    for (i, &c) in buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        if !first {
                            line.push(',');
                        }
                        first = false;
                        line.push_str(&format!(
                            "{{\"le\":{},\"count\":{c}}}",
                            Histogram::bucket_upper_bound(i)
                        ));
                    }
                    line.push(']');
                }
            }
            line.push('}');
            writeln!(w, "{line}")?;
        }
        Ok(())
    }

    /// The JSONL export as a `String`.
    pub fn to_jsonl_string(&self) -> String {
        let mut buf = Vec::new();
        self.to_jsonl(&mut buf)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("exporter emits UTF-8")
    }

    /// Writes the Prometheus text exposition format.
    ///
    /// # Errors
    /// Propagates I/O failures of `w`.
    pub fn to_prometheus(&self, w: &mut impl Write) -> io::Result<()> {
        let mut last_name = "";
        for e in &self.entries {
            if e.name != last_name {
                writeln!(w, "# TYPE {} {}", e.name, e.kind)?;
                last_name = &e.name;
            }
            let labels = |extra: Option<(&str, String)>| -> String {
                let mut parts: Vec<String> = e
                    .labels
                    .iter()
                    .map(|(k, v)| {
                        format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\""))
                    })
                    .collect();
                if let Some((k, v)) = extra {
                    parts.push(format!("{k}=\"{v}\""));
                }
                if parts.is_empty() {
                    String::new()
                } else {
                    format!("{{{}}}", parts.join(","))
                }
            };
            match &e.value {
                MetricValue::Counter(v) => {
                    writeln!(w, "{}{} {v}", e.name, labels(None))?;
                }
                MetricValue::Gauge(v) => {
                    writeln!(w, "{}{} {v}", e.name, labels(None))?;
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    let mut cumulative = 0u64;
                    for (i, &c) in buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cumulative += c;
                        let le = Histogram::bucket_upper_bound(i).to_string();
                        writeln!(
                            w,
                            "{}_bucket{} {cumulative}",
                            e.name,
                            labels(Some(("le", le)))
                        )?;
                    }
                    writeln!(
                        w,
                        "{}_bucket{} {count}",
                        e.name,
                        labels(Some(("le", "+Inf".to_string())))
                    )?;
                    writeln!(w, "{}_sum{} {sum}", e.name, labels(None))?;
                    writeln!(w, "{}_count{} {count}", e.name, labels(None))?;
                }
            }
        }
        Ok(())
    }

    /// The Prometheus export as a `String`.
    pub fn to_prometheus_string(&self) -> String {
        let mut buf = Vec::new();
        self.to_prometheus(&mut buf)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("exporter emits UTF-8")
    }

    /// The entry of `name` whose labels contain every pair in `labels`
    /// (convenience for tests and report code).
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SnapshotEntry> {
        self.entries.iter().find(|e| {
            e.name == name
                && labels
                    .iter()
                    .all(|(k, v)| e.labels.get(*k).map(String::as_str) == Some(*v))
        })
    }

    /// Sums a counter family across all its label sets (0 when absent).
    /// Smoke checks and dashboards usually want the aggregate of a
    /// per-label family — e.g. `cce_serve_requests_total` over every
    /// `{endpoint, status}` combination.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.name == name)
            .filter_map(|e| match e.value {
                MetricValue::Counter(v) => Some(v),
                _ => None,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter("t_total", &[("algo", "srk")]).add(42);
        r.gauge("t_live", &[]).set(-3);
        let h = r.histogram("t_ns", &[]);
        h.record(0);
        h.record(5);
        h.record(5);
        h.record(1000);
        r.snapshot()
    }

    #[test]
    fn jsonl_lines_are_valid_and_complete() {
        let _guard = crate::test_lock();
        let text = sample().to_jsonl_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(text.contains("\"name\":\"t_total\""));
        assert!(text.contains("\"labels\":{\"algo\":\"srk\"}"));
        assert!(text.contains("\"value\":42"));
        assert!(text.contains("\"value\":-3"));
        assert!(text.contains("\"count\":4,\"sum\":1010"));
        // 5 falls in the (3, 7] bucket → le = 7 with two observations.
        assert!(text.contains("{\"le\":7,\"count\":2}"), "{text}");
    }

    #[test]
    fn prometheus_histograms_are_cumulative() {
        let _guard = crate::test_lock();
        let text = sample().to_prometheus_string();
        assert!(text.contains("# TYPE t_ns histogram"));
        assert!(text.contains("t_ns_bucket{le=\"0\"} 1"));
        assert!(text.contains("t_ns_bucket{le=\"7\"} 3"));
        assert!(text.contains("t_ns_bucket{le=\"1023\"} 4"));
        assert!(text.contains("t_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("t_ns_sum 1010"));
        assert!(text.contains("t_ns_count 4"));
        assert!(text.contains("t_total{algo=\"srk\"} 42"));
        assert!(text.contains("t_live -3"));
    }

    #[test]
    fn counter_total_sums_across_label_sets() {
        let _guard = crate::test_lock();
        let r = Registry::new();
        r.counter("req_total", &[("endpoint", "explain"), ("status", "2xx")])
            .add(7);
        r.counter("req_total", &[("endpoint", "explain"), ("status", "429")])
            .add(2);
        r.counter("req_total", &[("endpoint", "ingest"), ("status", "2xx")])
            .add(5);
        r.counter("other_total", &[]).add(100);
        // A histogram sharing the name must not pollute the counter sum.
        r.histogram("req_total_ns", &[]).record(3);
        let snap = r.snapshot();
        assert_eq!(snap.counter_total("req_total"), 14);
        assert_eq!(snap.counter_total("other_total"), 100);
        assert_eq!(snap.counter_total("absent_total"), 0);
    }

    #[test]
    fn escaping_survives_hostile_labels() {
        let _guard = crate::test_lock();
        let r = Registry::new();
        r.counter("esc_total", &[("path", "a\"b\\c\nd")]).inc();
        let text = r.snapshot().to_jsonl_string();
        assert!(text.contains("a\\\"b\\\\c\\nd"), "{text}");
    }

    #[test]
    fn find_matches_on_labels() {
        let _guard = crate::test_lock();
        let snap = sample();
        assert!(snap.find("t_total", &[("algo", "srk")]).is_some());
        assert!(snap.find("t_total", &[("algo", "osrk")]).is_none());
        assert!(snap.find("missing", &[]).is_none());
    }
}
