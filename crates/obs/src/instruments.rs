//! The atomic instruments: counters, gauges, histograms, span timers.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

use crate::enabled;

/// Number of log₂ buckets a [`Histogram`] keeps: bucket `i` covers values
/// `v` with `2^(i-1) < v ≤ 2^i - 1`… precisely, `bucket(v) = bit-width of
/// v` (0 for `v = 0`), so upper bounds are `0, 1, 3, 7, …, 2^63 - 1, ∞`.
pub const BUCKET_COUNT: usize = 65;

/// A monotonically increasing count (events, items, errors).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh zeroed counter (normally obtained via
    /// [`crate::Registry::counter`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the counter (tests and between-experiment resets).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A value that can go up and down (live violators, window fill).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the gauge.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A log₂-bucketed distribution of `u64` observations (nanoseconds, key
/// lengths, scan counts).
///
/// Buckets are power-of-two ranges, so recording is a `leading_zeros` +
/// two relaxed RMWs — no floats, no locks, and a fixed 65-slot footprint
/// per instrument.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index of a value: its bit width (0 → 0, 1 → 1, 2..=3 →
    /// 2, 4..=7 → 3, …).
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// The inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Records a [`std::time::Duration`] in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Per-bucket observation counts (index = [`Histogram::bucket_of`]).
    pub fn bucket_counts(&self) -> [u64; BUCKET_COUNT] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// An upper estimate of the `q`-quantile (`0.0..=1.0`) from bucket
    /// upper bounds; 0 when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank.max(1) {
                return Self::bucket_upper_bound(i);
            }
        }
        u64::MAX
    }

    /// Clears all buckets.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// RAII latency span: measures from construction to drop and records the
/// elapsed nanoseconds into a [`Histogram`].
///
/// When recording is disabled at construction, no clock is read at
/// either end.
#[derive(Debug)]
pub struct SpanTimer<'a> {
    histogram: &'a Histogram,
    start: Option<Instant>,
}

impl<'a> SpanTimer<'a> {
    /// Starts timing into `histogram`.
    #[inline]
    pub fn start(histogram: &'a Histogram) -> Self {
        let start = enabled().then(Instant::now);
        Self { histogram, start }
    }

    /// Stops early and records (otherwise `Drop` records).
    pub fn stop(self) {}
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.histogram.record_duration(start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact() {
        let _guard = crate::test_lock();
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        for i in 0..BUCKET_COUNT {
            let ub = Histogram::bucket_upper_bound(i);
            assert_eq!(Histogram::bucket_of(ub), i, "upper bound of bucket {i}");
        }
    }

    #[test]
    fn histogram_tracks_count_sum_and_quantiles() {
        let _guard = crate::test_lock();
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert!((h.mean() - 1106.0 / 6.0).abs() < 1e-9);
        assert!(h.quantile_upper_bound(0.5) <= 127);
        assert!(h.quantile_upper_bound(1.0) >= 1000);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn counter_and_gauge_roundtrip() {
        let _guard = crate::test_lock();
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn span_timer_records_once_on_drop() {
        let _guard = crate::test_lock();
        let h = Histogram::new();
        {
            let _t = SpanTimer::start(&h);
            std::hint::black_box(17u64);
        }
        assert_eq!(h.count(), 1);
        let t = SpanTimer::start(&h);
        t.stop();
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn disabled_instruments_do_nothing() {
        let _guard = crate::test_lock();
        let h = Histogram::new();
        let c = Counter::new();
        crate::set_enabled(false);
        c.inc();
        h.record(9);
        let t = SpanTimer::start(&h);
        assert!(t.start.is_none(), "no clock read while disabled");
        drop(t);
        crate::set_enabled(true);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
    }
}
