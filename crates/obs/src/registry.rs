//! The process-global registry of labeled metric families.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::export::{MetricValue, Snapshot, SnapshotEntry};
use crate::instruments::{Counter, Gauge, Histogram};

/// One registered instrument: family name + sorted labels + the cell.
pub(crate) struct Entry {
    pub(crate) name: String,
    pub(crate) labels: Vec<(String, String)>,
    pub(crate) instrument: Instrument,
}

pub(crate) enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// A home for labeled metric families.
///
/// Registration (cold path) takes a mutex and allocates; the returned
/// `Arc` handles are lock-free to update. Re-registering the same
/// `(name, labels)` returns the existing instrument, so arbitrarily many
/// call sites aggregate into one time series.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

/// The process-global registry every instrument macro interns into.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

fn normalize(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out
}

impl Registry {
    /// A fresh, empty registry (tests; production code uses
    /// [`registry`]).
    pub fn new() -> Self {
        Self::default()
    }

    fn intern<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        pick: impl Fn(&Instrument) -> Option<Arc<T>>,
        make: impl FnOnce() -> (Arc<T>, Instrument),
    ) -> Arc<T> {
        let labels = normalize(labels);
        let mut entries = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for e in entries.iter() {
            if e.name == name && e.labels == labels {
                return pick(&e.instrument).unwrap_or_else(|| {
                    panic!(
                        "metric {name:?} re-registered as a different kind (was {})",
                        e.instrument.kind()
                    )
                });
            }
        }
        let (handle, instrument) = make();
        entries.push(Entry {
            name: name.to_string(),
            labels,
            instrument,
        });
        handle
    }

    /// The counter of family `name` with the given labels, created on
    /// first use.
    ///
    /// # Panics
    /// Panics when the same `(name, labels)` was registered as another
    /// instrument kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.intern(
            name,
            labels,
            |i| match i {
                Instrument::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || {
                let c = Arc::new(Counter::new());
                (Arc::clone(&c), Instrument::Counter(c))
            },
        )
    }

    /// The gauge of family `name` with the given labels.
    ///
    /// # Panics
    /// Panics on an instrument-kind conflict (see [`Registry::counter`]).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.intern(
            name,
            labels,
            |i| match i {
                Instrument::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            || {
                let g = Arc::new(Gauge::new());
                (Arc::clone(&g), Instrument::Gauge(g))
            },
        )
    }

    /// The histogram of family `name` with the given labels.
    ///
    /// # Panics
    /// Panics on an instrument-kind conflict (see [`Registry::counter`]).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.intern(
            name,
            labels,
            |i| match i {
                Instrument::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || {
                let h = Arc::new(Histogram::new());
                (Arc::clone(&h), Instrument::Histogram(h))
            },
        )
    }

    /// A point-in-time copy of every registered instrument, ordered by
    /// `(name, labels)` for stable output.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out: Vec<SnapshotEntry> = entries
            .iter()
            .map(|e| SnapshotEntry {
                name: e.name.clone(),
                kind: e.instrument.kind(),
                labels: e.labels.iter().cloned().collect::<BTreeMap<_, _>>(),
                value: match &e.instrument {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h.bucket_counts().to_vec(),
                    },
                },
            })
            .collect();
        out.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        Snapshot { entries: out }
    }

    /// Zeroes every registered instrument (between-experiment resets; the
    /// instruments stay registered).
    pub fn reset(&self) {
        let entries = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for e in entries.iter() {
            match &e.instrument {
                Instrument::Counter(c) => c.reset(),
                Instrument::Gauge(g) => g.reset(),
                Instrument::Histogram(h) => h.reset(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_one_instrument() {
        let _guard = crate::test_lock();
        let r = Registry::new();
        let a = r.counter("x_total", &[("k", "v")]);
        let b = r.counter("x_total", &[("k", "v")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        // Label order is normalized away.
        let c = r.gauge("g", &[("a", "1"), ("b", "2")]);
        let d = r.gauge("g", &[("b", "2"), ("a", "1")]);
        c.set(9);
        assert_eq!(d.get(), 9);
    }

    #[test]
    fn distinct_labels_are_distinct_instruments() {
        let _guard = crate::test_lock();
        let r = Registry::new();
        let a = r.counter("y_total", &[("algo", "srk")]);
        let b = r.counter("y_total", &[("algo", "osrk")]);
        a.add(3);
        assert_eq!(b.get(), 0);
        assert_eq!(r.snapshot().entries.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_panic() {
        let r = Registry::new();
        let _ = r.counter("z", &[]);
        let _ = r.gauge("z", &[]);
    }

    #[test]
    fn reset_zeroes_but_keeps_registration() {
        let _guard = crate::test_lock();
        let r = Registry::new();
        let c = r.counter("r_total", &[]);
        let h = r.histogram("r_ns", &[]);
        c.add(5);
        h.record(100);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(r.snapshot().entries.len(), 2);
    }
}
