//! Zero-dependency observability for the CCE hot paths.
//!
//! The ROADMAP's north star is a production-scale explanation service;
//! this crate is the substrate every other crate reports through:
//!
//! * [`Counter`] / [`Gauge`] — lock-free atomic instruments,
//! * [`Histogram`] — log₂-bucketed value distribution (latencies, key
//!   lengths) with atomic buckets,
//! * [`SpanTimer`] — RAII latency measurement into a histogram,
//! * [`Registry`] — the process-global home of labeled metric families,
//! * exporters — JSONL ([`Snapshot::to_jsonl`]) and Prometheus text
//!   format ([`Snapshot::to_prometheus`]).
//!
//! # Cost model
//!
//! Instrument handles are interned once (a mutex + allocation on the
//! *first* call per site) and cached in `static OnceLock`s by the
//! [`counter!`] / [`gauge!`] / [`histogram!`] macros. After interning, a
//! hot-path update is one `Relaxed` atomic RMW — and when the global
//! switch is off ([`set_enabled`]), one `Relaxed` load and a branch, with
//! **no allocation** either way. The `obs_overhead` bench in
//! `crates/bench` holds instrumented `explain_all` within ~5% of the
//! uninstrumented baseline.
//!
//! # Conventions
//!
//! Metric names are `snake_case` with a `cce_` prefix and a unit or
//! `_total` suffix (`cce_explain_keys_total`, `cce_batch_explain_ns`).
//! Labels qualify a family into instruments (`algo="srk"`,
//! `mode="parallel"`); keep cardinality tiny — labels become one
//! instrument per combination, forever.
//!
//! Families reported by the kernel layer (`cce-core::kernels`):
//! `cce_kernel_dispatch_total{path="scalar"|"avx2"|"neon"}` records the
//! once-per-process SIMD dispatch decision;
//! `cce_stripe_jobs_total` / `cce_stripe_tasks_total` count striped
//! kernel passes and the per-stripe tasks they fanned into;
//! `cce_stripe_explains_total` counts explains that engaged the stripe
//! team at all (large contexts only).
//!
//! ```
//! let hits = cce_obs::counter!("doc_hits_total", "kind" => "example");
//! hits.inc();
//! let mut out = Vec::new();
//! cce_obs::registry().snapshot().to_jsonl(&mut out).unwrap();
//! assert!(String::from_utf8(out).unwrap().contains("doc_hits_total"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod instruments;
mod registry;

pub use export::{MetricValue, Snapshot};
pub use instruments::{Counter, Gauge, Histogram, SpanTimer, BUCKET_COUNT};
pub use registry::{registry, Registry};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// True when instruments record; checked with a `Relaxed` load on every
/// update, so a disabled build's hot paths pay one load + branch.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally switches recording on or off. Registration still works while
/// disabled (handles intern as usual); only updates become no-ops.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Interns (once) and returns a `&'static` [`Counter`] for a labeled
/// family member.
///
/// ```
/// let c = cce_obs::counter!("requests_total", "endpoint" => "explain");
/// c.inc();
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr $(, $k:expr => $v:expr)* $(,)?) => {{
        static __HANDLE: std::sync::OnceLock<std::sync::Arc<$crate::Counter>> =
            std::sync::OnceLock::new();
        &**__HANDLE.get_or_init(|| $crate::registry().counter($name, &[$(($k, $v)),*]))
    }};
}

/// Interns (once) and returns a `&'static` [`Gauge`].
#[macro_export]
macro_rules! gauge {
    ($name:expr $(, $k:expr => $v:expr)* $(,)?) => {{
        static __HANDLE: std::sync::OnceLock<std::sync::Arc<$crate::Gauge>> =
            std::sync::OnceLock::new();
        &**__HANDLE.get_or_init(|| $crate::registry().gauge($name, &[$(($k, $v)),*]))
    }};
}

/// Interns (once) and returns a `&'static` [`Histogram`].
#[macro_export]
macro_rules! histogram {
    ($name:expr $(, $k:expr => $v:expr)* $(,)?) => {{
        static __HANDLE: std::sync::OnceLock<std::sync::Arc<$crate::Histogram>> =
            std::sync::OnceLock::new();
        &**__HANDLE.get_or_init(|| $crate::registry().histogram($name, &[$(($k, $v)),*]))
    }};
}

/// Serializes tests that toggle [`set_enabled`] or assert exact counts —
/// the registry and switch are process-global, and `cargo test` runs
/// tests on concurrent threads.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macros_return_interned_statics() {
        let _guard = test_lock();
        let a = counter!("lib_test_total", "site" => "a");
        let b = counter!("lib_test_total", "site" => "a");
        a.inc();
        b.inc();
        // Same site → same static → same underlying cell.
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn disabling_stops_recording() {
        let _guard = test_lock();
        let c = counter!("lib_disabled_total");
        set_enabled(false);
        c.inc();
        assert_eq!(c.get(), 0);
        set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }
}
