//! Property-based tests of the data substrate.

use cce_dataset::csv;
use cce_dataset::{Binning, BinningStrategy, Dataset, FeatureDef, Instance, Label, Schema};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bucket_codes_stay_in_range(
        values in proptest::collection::vec(-1e6f64..1e6, 1..200),
        buckets in 1usize..25,
        quantile in any::<bool>(),
    ) {
        let strategy = if quantile { BinningStrategy::Quantile } else { BinningStrategy::EqualWidth };
        let b = Binning::fit(&values, buckets, strategy);
        prop_assert!(b.buckets() >= 1);
        prop_assert!(b.buckets() <= buckets);
        for &v in &values {
            prop_assert!((b.bucket_of(v) as usize) < b.buckets());
        }
        // Probes outside the observed range clamp.
        prop_assert!((b.bucket_of(f64::MIN) as usize) < b.buckets());
        prop_assert!((b.bucket_of(f64::MAX) as usize) < b.buckets());
    }

    #[test]
    fn bucketing_is_monotone(
        values in proptest::collection::vec(-1e4f64..1e4, 2..100),
        buckets in 2usize..15,
    ) {
        let b = Binning::fit(&values, buckets, BinningStrategy::EqualWidth);
        let mut sorted = values.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for w in sorted.windows(2) {
            prop_assert!(b.bucket_of(w[0]) <= b.bucket_of(w[1]));
        }
    }

    #[test]
    fn midpoints_fall_in_their_bucket(
        values in proptest::collection::vec(0f64..1e4, 5..100),
        buckets in 2usize..12,
    ) {
        let b = Binning::fit(&values, buckets, BinningStrategy::EqualWidth);
        for code in 0..b.buckets() as u32 {
            let mid = b.midpoint(code);
            prop_assert_eq!(b.bucket_of(mid), code, "midpoint of bucket {} strays", code);
        }
    }

    #[test]
    fn agreement_is_reflexive_and_symmetric(
        a in proptest::collection::vec(0u32..8, 1..12),
        b_seed in proptest::collection::vec(0u32..8, 1..12),
        feats in proptest::collection::vec(0usize..12, 0..6),
    ) {
        let n = a.len();
        let b: Vec<u32> = (0..n).map(|i| b_seed[i % b_seed.len()]).collect();
        let feats: Vec<usize> = feats.into_iter().filter(|&f| f < n).collect();
        let xa = Instance::new(a);
        let xb = Instance::new(b);
        prop_assert!(xa.agrees_on(&xa, &feats), "reflexive");
        prop_assert_eq!(xa.agrees_on(&xb, &feats), xb.agrees_on(&xa, &feats), "symmetric");
        // Agreement on a superset implies agreement on the subset.
        if xa.agrees_on(&xb, &feats) {
            for k in 0..feats.len() {
                prop_assert!(xa.agrees_on(&xb, &feats[..k]));
            }
        }
    }

    #[test]
    fn csv_round_trip_any_dataset(
        rows in proptest::collection::vec(
            (proptest::collection::vec(0u32..5, 3..4), 0u32..3),
            1..30,
        ),
    ) {
        let schema = Schema::new(vec![
            FeatureDef::categorical("a", &["0", "1", "2", "3", "4"]),
            FeatureDef::categorical("b", &["0", "1", "2", "3", "4"]),
            FeatureDef::categorical("c", &["0", "1", "2", "3", "4"]),
        ]);
        let (xs, ys): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
        let ds = Dataset::new(
            "p".into(),
            schema,
            xs.into_iter().map(Instance::new).collect(),
            ys.into_iter().map(Label).collect(),
        );
        let text = csv::to_csv(&ds);
        let back = csv::from_csv(&text, "p", ds.schema().clone()).unwrap();
        prop_assert_eq!(back.instances(), ds.instances());
        prop_assert_eq!(back.labels(), ds.labels());
        let inferred = csv::infer_from_csv(&text, "p").unwrap();
        prop_assert_eq!(inferred.instances(), ds.instances());
    }

    #[test]
    fn marginals_sum_to_row_count(
        rows in proptest::collection::vec(
            (proptest::collection::vec(0u32..4, 2..3), 0u32..2),
            1..40,
        ),
    ) {
        let schema = Schema::new(vec![
            FeatureDef::categorical("a", &["0", "1", "2", "3"]),
            FeatureDef::categorical("b", &["0", "1", "2", "3"]),
        ]);
        let (xs, ys): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
        let ds = Dataset::new(
            "p".into(),
            schema,
            xs.into_iter().map(Instance::new).collect(),
            ys.into_iter().map(Label).collect(),
        );
        for f in 0..2 {
            prop_assert_eq!(ds.marginal(f).iter().sum::<u32>() as usize, ds.len());
        }
    }

    #[test]
    fn chunks_partition_exactly(k in 1usize..10, n in 1usize..60) {
        let schema = Schema::new(vec![FeatureDef::categorical("a", &["0", "1"])]);
        let instances = (0..n).map(|i| Instance::new(vec![(i % 2) as u32])).collect();
        let labels = (0..n).map(|i| Label((i % 2) as u32)).collect();
        let ds = Dataset::new("p".into(), schema, instances, labels);
        let parts = ds.chunks(k);
        prop_assert_eq!(parts.iter().map(Dataset::len).sum::<usize>(), n);
        // Order is preserved across chunk boundaries.
        let mut rebuilt = Vec::new();
        for p in &parts {
            rebuilt.extend(p.instances().iter().cloned());
        }
        prop_assert_eq!(rebuilt, ds.instances().to_vec());
    }
}
