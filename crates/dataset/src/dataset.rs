//! Encoded datasets: a schema plus dense rows and labels.

use std::sync::Arc;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::instance::{Instance, Label};
use crate::schema::Schema;

/// An encoded dataset — the unit every model and explainer in the
/// workspace consumes.
///
/// The schema is reference-counted so that train/test splits and sliding
/// windows share it without copying.
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    schema: Arc<Schema>,
    instances: Vec<Instance>,
    labels: Vec<Label>,
    label_names: Vec<String>,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    /// Panics if `instances` and `labels` lengths differ, or any instance
    /// width differs from the schema.
    pub fn new(name: String, schema: Schema, instances: Vec<Instance>, labels: Vec<Label>) -> Self {
        assert_eq!(instances.len(), labels.len(), "instances/labels mismatch");
        let n = schema.n_features();
        assert!(
            instances.iter().all(|x| x.len() == n),
            "instance width mismatch"
        );
        Self {
            name,
            schema: Arc::new(schema),
            instances,
            labels,
            label_names: Vec::new(),
        }
    }

    /// Creates a dataset sharing an existing schema handle.
    pub fn with_shared_schema(
        name: String,
        schema: Arc<Schema>,
        instances: Vec<Instance>,
        labels: Vec<Label>,
    ) -> Self {
        assert_eq!(instances.len(), labels.len(), "instances/labels mismatch");
        Self {
            name,
            schema,
            instances,
            labels,
            label_names: Vec::new(),
        }
    }

    /// Attaches label display names.
    pub fn with_label_names(mut self, names: Vec<String>) -> Self {
        self.label_names = names;
        self
    }

    /// Label display names, indexed by label code (may be empty).
    pub fn label_names(&self) -> &[String] {
        &self.label_names
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Shared schema handle.
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// All instances.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// All labels, aligned with [`Dataset::instances`].
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Instance at `row`.
    pub fn instance(&self, row: usize) -> &Instance {
        &self.instances[row]
    }

    /// Label at `row`.
    pub fn label(&self, row: usize) -> Label {
        self.labels[row]
    }

    /// Display name of a label, falling back to `L<code>`.
    pub fn label_name(&self, label: Label) -> String {
        self.label_names
            .get(label.0 as usize)
            .cloned()
            .unwrap_or_else(|| label.to_string())
    }

    /// Distinct labels present, sorted.
    pub fn distinct_labels(&self) -> Vec<Label> {
        let mut ls: Vec<Label> = self.labels.clone();
        ls.sort_unstable();
        ls.dedup();
        ls
    }

    /// Iterates `(instance, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Instance, Label)> + '_ {
        self.instances.iter().zip(self.labels.iter().copied())
    }

    /// Splits into `(train, test)` with `train_ratio` of rows (shuffled with
    /// `rng`) in the train part — the paper's 70/30 protocol.
    pub fn split(&self, train_ratio: f64, rng: &mut impl Rng) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&train_ratio), "ratio out of range");
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        let cut = ((self.len() as f64) * train_ratio).round() as usize;
        let take = |rows: &[usize]| {
            let instances = rows.iter().map(|&r| self.instances[r].clone()).collect();
            let labels = rows.iter().map(|&r| self.labels[r]).collect();
            Dataset::with_shared_schema(self.name.clone(), self.schema_arc(), instances, labels)
                .with_label_names(self.label_names.clone())
        };
        (take(&order[..cut]), take(&order[cut..]))
    }

    /// A copy containing only rows whose index is in `rows`.
    pub fn select(&self, rows: &[usize]) -> Dataset {
        let instances = rows.iter().map(|&r| self.instances[r].clone()).collect();
        let labels = rows.iter().map(|&r| self.labels[r]).collect();
        Dataset::with_shared_schema(self.name.clone(), self.schema_arc(), instances, labels)
            .with_label_names(self.label_names.clone())
    }

    /// A copy containing the first `n` rows (used by the `|I|` context-size
    /// sweeps).
    pub fn head(&self, n: usize) -> Dataset {
        let rows: Vec<usize> = (0..n.min(self.len())).collect();
        self.select(&rows)
    }

    /// Splits the dataset into `k` consecutive, (nearly) equal parts — used
    /// by the dynamic-model experiments (App. B, Exp-4).
    pub fn chunks(&self, k: usize) -> Vec<Dataset> {
        assert!(k > 0, "k must be positive");
        let per = self.len().div_ceil(k);
        (0..k)
            .map(|i| {
                let lo = (i * per).min(self.len());
                let hi = ((i + 1) * per).min(self.len());
                let rows: Vec<usize> = (lo..hi).collect();
                self.select(&rows)
            })
            .collect()
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the instance width differs from the schema.
    pub fn push(&mut self, x: Instance, y: Label) {
        assert_eq!(x.len(), self.schema.n_features(), "instance width mismatch");
        self.instances.push(x);
        self.labels.push(y);
    }

    /// Replaces all labels (used when re-labeling a context with model
    /// predictions).
    ///
    /// # Panics
    /// Panics if the length differs.
    pub fn set_labels(&mut self, labels: Vec<Label>) {
        assert_eq!(labels.len(), self.instances.len(), "label count mismatch");
        self.labels = labels;
    }

    /// Empirical marginal distribution of feature `f`: for each code, the
    /// number of rows carrying it. Used by the perturbation samplers of
    /// LIME/SHAP/Anchor.
    pub fn marginal(&self, f: usize) -> Vec<u32> {
        let mut counts = vec![0u32; self.schema.feature(f).cardinality()];
        for x in &self.instances {
            let c = x[f] as usize;
            if c < counts.len() {
                counts[c] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FeatureDef;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let schema = Schema::new(vec![
            FeatureDef::categorical("a", &["x", "y"]),
            FeatureDef::categorical("b", &["p", "q", "r"]),
        ]);
        let instances = (0..10).map(|i| Instance::new(vec![i % 2, i % 3])).collect();
        let labels = (0..10).map(|i| Label(u32::from(i % 2 == 0))).collect();
        Dataset::new("toy".into(), schema, instances, labels)
            .with_label_names(vec!["neg".into(), "pos".into()])
    }

    #[test]
    fn split_partitions_rows() {
        let ds = toy();
        let mut rng = StdRng::seed_from_u64(7);
        let (tr, te) = ds.split(0.7, &mut rng);
        assert_eq!(tr.len(), 7);
        assert_eq!(te.len(), 3);
        assert_eq!(tr.schema().n_features(), 2);
    }

    #[test]
    fn split_is_seed_deterministic() {
        let ds = toy();
        let (a1, _) = ds.split(0.5, &mut StdRng::seed_from_u64(3));
        let (a2, _) = ds.split(0.5, &mut StdRng::seed_from_u64(3));
        assert_eq!(a1.instances(), a2.instances());
    }

    #[test]
    fn chunks_cover_everything() {
        let ds = toy();
        let parts = ds.chunks(3);
        assert_eq!(parts.iter().map(Dataset::len).sum::<usize>(), ds.len());
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn marginal_counts_codes() {
        let ds = toy();
        let m = ds.marginal(0);
        assert_eq!(m.iter().sum::<u32>(), 10);
        assert_eq!(m, vec![5, 5]);
    }

    #[test]
    fn label_names_render() {
        let ds = toy();
        assert_eq!(ds.label_name(Label(1)), "pos");
        assert_eq!(ds.label_name(Label(9)), "L9");
    }

    #[test]
    fn head_truncates() {
        let ds = toy();
        assert_eq!(ds.head(4).len(), 4);
        assert_eq!(ds.head(100).len(), 10);
    }

    #[test]
    fn distinct_labels_sorted() {
        let ds = toy();
        assert_eq!(ds.distinct_labels(), vec![Label(0), Label(1)]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn push_rejects_wrong_width() {
        let mut ds = toy();
        ds.push(Instance::new(vec![0]), Label(0));
    }
}
