//! Schema (de)serialization — the sidecar format for encoded CSV files.
//!
//! Encoded CSVs carry only integer codes; this plain-text format preserves
//! the display metadata (categorical value names, numeric bucket edges) so
//! tools like the `cce` CLI can render `Credit=poor` instead of
//! `Credit=v1`. One line per feature:
//!
//! ```text
//! cat|Credit|good|poor
//! num|Income|lo=800|hi=20000|edges=2400;4000;5600
//! ```

use crate::binning::Binning;
use crate::schema::{FeatureDef, FeatureKind, Schema};

/// Errors from [`schema_from_text`].
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaIoError {
    /// A line had an unknown kind tag.
    UnknownKind {
        /// 1-based line number.
        line: usize,
        /// The offending tag.
        kind: String,
    },
    /// A line was too short or a field failed to parse.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for SchemaIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaIoError::UnknownKind { line, kind } => {
                write!(f, "unknown feature kind {kind:?} at line {line}")
            }
            SchemaIoError::Malformed { line } => write!(f, "malformed schema line {line}"),
        }
    }
}

impl std::error::Error for SchemaIoError {}

/// Serializes a schema to the sidecar text format.
pub fn schema_to_text(schema: &Schema) -> String {
    let mut out = String::new();
    for f in schema.features() {
        match &f.kind {
            FeatureKind::Categorical { names } => {
                out.push_str("cat|");
                out.push_str(&escape(&f.name));
                for n in names {
                    out.push('|');
                    out.push_str(&escape(n));
                }
            }
            FeatureKind::Numeric { binning } => {
                out.push_str("num|");
                out.push_str(&escape(&f.name));
                out.push_str(&format!("|lo={}|hi={}", binning.lo(), binning.hi()));
                out.push_str("|edges=");
                out.push_str(
                    &binning
                        .edges()
                        .iter()
                        .map(f64::to_string)
                        .collect::<Vec<_>>()
                        .join(";"),
                );
            }
        }
        out.push('\n');
    }
    out
}

/// Parses a schema from the sidecar text format.
///
/// # Errors
/// Returns a [`SchemaIoError`] naming the offending line.
pub fn schema_from_text(text: &str) -> Result<Schema, SchemaIoError> {
    let mut feats = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('|').collect();
        if fields.len() < 2 {
            return Err(SchemaIoError::Malformed { line: i + 1 });
        }
        let name = unescape(fields[1]);
        match fields[0] {
            "cat" => {
                let values: Vec<String> = fields[2..].iter().map(|v| unescape(v)).collect();
                let refs: Vec<&str> = values.iter().map(String::as_str).collect();
                feats.push(FeatureDef::categorical(&name, &refs));
            }
            "num" => {
                if fields.len() != 5 {
                    return Err(SchemaIoError::Malformed { line: i + 1 });
                }
                let parse = |s: &str, prefix: &str| -> Result<f64, SchemaIoError> {
                    s.strip_prefix(prefix)
                        .and_then(|v| v.parse().ok())
                        .ok_or(SchemaIoError::Malformed { line: i + 1 })
                };
                let lo = parse(fields[2], "lo=")?;
                let hi = parse(fields[3], "hi=")?;
                let edges_str = fields[4]
                    .strip_prefix("edges=")
                    .ok_or(SchemaIoError::Malformed { line: i + 1 })?;
                let edges: Vec<f64> = if edges_str.is_empty() {
                    Vec::new()
                } else {
                    edges_str
                        .split(';')
                        .map(|e| {
                            e.parse()
                                .map_err(|_| SchemaIoError::Malformed { line: i + 1 })
                        })
                        .collect::<Result<_, _>>()?
                };
                feats.push(FeatureDef::numeric(
                    &name,
                    Binning::from_parts(edges, lo, hi),
                ));
            }
            other => {
                return Err(SchemaIoError::UnknownKind {
                    line: i + 1,
                    kind: other.to_string(),
                })
            }
        }
    }
    Ok(Schema::new(feats))
}

/// Serializes a schema plus label display names (one extra `lbl|…` line).
pub fn sidecar_to_text(schema: &Schema, label_names: &[String]) -> String {
    let mut out = schema_to_text(schema);
    if !label_names.is_empty() {
        out.push_str("lbl");
        for n in label_names {
            out.push('|');
            out.push_str(&escape(n));
        }
        out.push('\n');
    }
    out
}

/// Parses a sidecar produced by [`sidecar_to_text`]: the schema and the
/// (possibly empty) label names.
///
/// # Errors
/// Returns a [`SchemaIoError`] naming the offending line.
pub fn sidecar_from_text(text: &str) -> Result<(Schema, Vec<String>), SchemaIoError> {
    let mut feature_lines = Vec::new();
    let mut labels = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("lbl|") {
            labels = rest.split('|').map(unescape).collect();
        } else {
            feature_lines.push(line);
        }
    }
    let schema = schema_from_text(&feature_lines.join("\n"))?;
    Ok((schema, labels))
}

fn escape(s: &str) -> String {
    s.replace('|', ";").replace('\n', " ")
}

fn unescape(s: &str) -> String {
    s.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::BinningStrategy;

    fn sample() -> Schema {
        let vals: Vec<f64> = (0..100).map(f64::from).collect();
        Schema::new(vec![
            FeatureDef::categorical("Credit", &["good", "poor"]),
            FeatureDef::numeric(
                "Income",
                Binning::fit(&vals, 4, BinningStrategy::EqualWidth),
            ),
            FeatureDef::categorical("Area", &["Urban", "Semiurban", "Rural"]),
        ])
    }

    #[test]
    fn round_trip_preserves_everything() {
        let schema = sample();
        let text = schema_to_text(&schema);
        let back = schema_from_text(&text).unwrap();
        assert_eq!(back, schema);
    }

    #[test]
    fn round_trip_preserves_bucket_boundaries() {
        let schema = sample();
        let back = schema_from_text(&schema_to_text(&schema)).unwrap();
        let (orig, parsed) = (schema.feature(1), back.feature(1));
        for code in 0..orig.cardinality() as u32 {
            assert_eq!(orig.display(code), parsed.display(code));
        }
    }

    #[test]
    fn malformed_lines_are_reported() {
        assert!(matches!(
            schema_from_text("cat"),
            Err(SchemaIoError::Malformed { line: 1 })
        ));
        assert!(matches!(
            schema_from_text("cat|a|x\nwat|b"),
            Err(SchemaIoError::UnknownKind { line: 2, .. })
        ));
        assert!(matches!(
            schema_from_text("num|a|lo=1|hi=2"),
            Err(SchemaIoError::Malformed { line: 1 })
        ));
        assert!(matches!(
            schema_from_text("num|a|lo=x|hi=2|edges="),
            Err(SchemaIoError::Malformed { line: 1 })
        ));
    }

    #[test]
    fn empty_edges_single_bucket() {
        let s = schema_from_text("num|flat|lo=5|hi=5|edges=").unwrap();
        assert_eq!(s.feature(0).cardinality(), 1);
    }

    #[test]
    fn every_synthetic_dataset_schema_round_trips() {
        use crate::binning::BinSpec;
        use crate::synth;
        for name in synth::GENERAL_DATASETS {
            for strategy in [BinningStrategy::EqualWidth, BinningStrategy::Quantile] {
                let raw = synth::general_dataset(name, 0.05, 3).unwrap();
                let ds = raw.encode(&BinSpec::uniform(10).with_strategy(strategy));
                let text = sidecar_to_text(ds.schema(), &raw.label_names);
                let (schema, labels) = sidecar_from_text(&text).unwrap();
                assert_eq!(&schema, ds.schema(), "{name} {strategy:?}");
                assert_eq!(labels, raw.label_names);
            }
        }
    }

    #[test]
    fn sidecar_round_trips_labels() {
        let schema = sample();
        let labels = vec!["Denied".to_string(), "Approved".to_string()];
        let text = sidecar_to_text(&schema, &labels);
        let (back, back_labels) = sidecar_from_text(&text).unwrap();
        assert_eq!(back, schema);
        assert_eq!(back_labels, labels);
        // Without labels, the sidecar degrades to a plain schema.
        let (back2, none) = sidecar_from_text(&schema_to_text(&schema)).unwrap();
        assert_eq!(back2, schema);
        assert!(none.is_empty());
    }

    #[test]
    fn pipe_in_names_is_escaped() {
        let schema = Schema::new(vec![FeatureDef::categorical("a|b", &["x|y"])]);
        let back = schema_from_text(&schema_to_text(&schema)).unwrap();
        // Escaping is lossy (| → ;) but parsing must stay unambiguous.
        assert_eq!(back.n_features(), 1);
        assert_eq!(back.feature(0).cardinality(), 1);
    }
}
