//! Minimal CSV persistence for encoded datasets.
//!
//! Good enough for inspecting generated data and for shipping experiment
//! inputs between runs; not a general CSV parser (no embedded quotes in
//! headers, UTF-8 only). Values are written in *encoded* form with a header
//! carrying feature names; the schema itself travels separately.

use crate::dataset::Dataset;
use crate::instance::{Cat, Instance, Label};
use crate::schema::Schema;

/// Serializes a dataset to CSV with a header row; the last column is the
/// label code.
pub fn to_csv(ds: &Dataset) -> String {
    let mut out = String::new();
    for f in ds.schema().features() {
        out.push_str(&escape(&f.name));
        out.push(',');
    }
    out.push_str("__label\n");
    for (x, y) in ds.iter() {
        for v in x.values() {
            out.push_str(&v.to_string());
            out.push(',');
        }
        out.push_str(&y.0.to_string());
        out.push('\n');
    }
    out
}

/// Errors from [`from_csv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input had no header row.
    MissingHeader,
    /// A row had the wrong number of fields.
    RowWidth {
        /// 1-based line number of the offending row.
        line: usize,
    },
    /// A field failed to parse as an encoded value.
    BadValue {
        /// 1-based line number of the offending row.
        line: usize,
        /// Raw field contents.
        field: String,
    },
    /// Header does not match the supplied schema.
    SchemaMismatch,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "missing CSV header"),
            CsvError::RowWidth { line } => write!(f, "wrong field count at line {line}"),
            CsvError::BadValue { line, field } => {
                write!(f, "unparsable value {field:?} at line {line}")
            }
            CsvError::SchemaMismatch => write!(f, "CSV header does not match schema"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses a dataset previously written by [`to_csv`], validating the header
/// against `schema`.
pub fn from_csv(text: &str, name: &str, schema: Schema) -> Result<Dataset, CsvError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(CsvError::MissingHeader)?;
    let cols: Vec<&str> = header.split(',').collect();
    if cols.len() != schema.n_features() + 1 || cols[cols.len() - 1] != "__label" {
        return Err(CsvError::SchemaMismatch);
    }
    for (i, col) in cols[..cols.len() - 1].iter().enumerate() {
        if unescape(col) != schema.feature(i).name {
            return Err(CsvError::SchemaMismatch);
        }
    }
    let mut instances = Vec::new();
    let mut labels = Vec::new();
    for (idx, line) in lines {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != cols.len() {
            return Err(CsvError::RowWidth { line: idx + 1 });
        }
        let mut vals: Vec<Cat> = Vec::with_capacity(fields.len() - 1);
        for f in &fields[..fields.len() - 1] {
            vals.push(f.parse().map_err(|_| CsvError::BadValue {
                line: idx + 1,
                field: (*f).to_string(),
            })?);
        }
        let y: u32 = fields[fields.len() - 1]
            .parse()
            .map_err(|_| CsvError::BadValue {
                line: idx + 1,
                field: fields[fields.len() - 1].to_string(),
            })?;
        instances.push(Instance::new(vals));
        labels.push(Label(y));
    }
    Ok(Dataset::new(name.to_string(), schema, instances, labels))
}

/// Parses a dataset from CSV *without* a known schema: every column is
/// treated as categorical with cardinality `max code + 1` and synthetic
/// value names (`v0`, `v1`, …). This is what the `cce` CLI uses to load
/// user-provided encoded data.
pub fn infer_from_csv(text: &str, name: &str) -> Result<Dataset, CsvError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(CsvError::MissingHeader)?;
    let cols: Vec<&str> = header.split(',').collect();
    if cols.len() < 2 || cols[cols.len() - 1] != "__label" {
        return Err(CsvError::SchemaMismatch);
    }
    let n = cols.len() - 1;
    let mut instances: Vec<Vec<Cat>> = Vec::new();
    let mut labels = Vec::new();
    let mut max_code = vec![0u32; n];
    for (idx, line) in lines {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != cols.len() {
            return Err(CsvError::RowWidth { line: idx + 1 });
        }
        let mut vals: Vec<Cat> = Vec::with_capacity(n);
        for f in &fields[..n] {
            let v: Cat = f.parse().map_err(|_| CsvError::BadValue {
                line: idx + 1,
                field: (*f).to_string(),
            })?;
            vals.push(v);
        }
        for (m, &v) in max_code.iter_mut().zip(&vals) {
            *m = (*m).max(v);
        }
        let y: u32 = fields[n].parse().map_err(|_| CsvError::BadValue {
            line: idx + 1,
            field: fields[n].to_string(),
        })?;
        instances.push(vals);
        labels.push(Label(y));
    }
    let feats = cols[..n]
        .iter()
        .zip(&max_code)
        .map(|(name, &m)| {
            let values: Vec<String> = (0..=m).map(|v| format!("v{v}")).collect();
            let refs: Vec<&str> = values.iter().map(String::as_str).collect();
            crate::schema::FeatureDef::categorical(&unescape(name), &refs)
        })
        .collect();
    Ok(Dataset::new(
        name.to_string(),
        Schema::new(feats),
        instances.into_iter().map(Instance::new).collect(),
        labels,
    ))
}

fn escape(s: &str) -> String {
    s.replace(',', ";")
}

fn unescape(s: &str) -> String {
    s.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FeatureDef;

    fn toy() -> Dataset {
        let schema = Schema::new(vec![
            FeatureDef::categorical("a", &["x", "y"]),
            FeatureDef::categorical("b", &["p", "q"]),
        ]);
        let instances = vec![Instance::new(vec![0, 1]), Instance::new(vec![1, 0])];
        let labels = vec![Label(0), Label(1)];
        Dataset::new("toy".into(), schema, instances, labels)
    }

    #[test]
    fn round_trip() {
        let ds = toy();
        let text = to_csv(&ds);
        let back = from_csv(&text, "toy", ds.schema().clone()).unwrap();
        assert_eq!(back.instances(), ds.instances());
        assert_eq!(back.labels(), ds.labels());
    }

    #[test]
    fn header_validation() {
        let ds = toy();
        let text = to_csv(&ds);
        let wrong = Schema::new(vec![
            FeatureDef::categorical("zzz", &["x", "y"]),
            FeatureDef::categorical("b", &["p", "q"]),
        ]);
        assert_eq!(
            from_csv(&text, "toy", wrong).unwrap_err(),
            CsvError::SchemaMismatch
        );
    }

    #[test]
    fn bad_value_reported_with_line() {
        let ds = toy();
        let mut text = to_csv(&ds);
        text.push_str("nope,1,0\n");
        match from_csv(&text, "toy", ds.schema().clone()) {
            Err(CsvError::BadValue { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected BadValue, got {other:?}"),
        }
    }

    #[test]
    fn infer_round_trips_codes() {
        let ds = toy();
        let text = to_csv(&ds);
        let inferred = infer_from_csv(&text, "toy").unwrap();
        assert_eq!(inferred.instances(), ds.instances());
        assert_eq!(inferred.labels(), ds.labels());
        assert_eq!(inferred.schema().feature(0).name, "a");
        // Cardinalities inferred from observed codes.
        assert_eq!(inferred.schema().feature(0).cardinality(), 2);
    }

    #[test]
    fn infer_rejects_missing_label_column() {
        assert_eq!(
            infer_from_csv("a,b\n0,1\n", "x").unwrap_err(),
            CsvError::SchemaMismatch
        );
    }

    #[test]
    fn empty_body_is_ok() {
        let ds = toy();
        let header_only: String = to_csv(&ds).lines().next().unwrap().to_string() + "\n";
        let back = from_csv(&header_only, "toy", ds.schema().clone()).unwrap();
        assert!(back.is_empty());
    }
}
