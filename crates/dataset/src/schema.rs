//! Feature definitions and dataset schemas.

use crate::binning::Binning;
use crate::instance::Cat;

/// The type of a feature after encoding.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureKind {
    /// A categorical feature; `names[code]` is the display value.
    Categorical {
        /// Display names, indexed by encoded value.
        names: Vec<String>,
    },
    /// A discretized numeric feature; codes are *ordinal* (bucket order
    /// follows numeric order), which lets tree learners use threshold
    /// splits.
    Numeric {
        /// The fitted discretization.
        binning: Binning,
    },
}

/// A single feature of a schema.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureDef {
    /// Feature (column) name, e.g. `"Credit"`.
    pub name: String,
    /// Value type.
    pub kind: FeatureKind,
}

impl FeatureDef {
    /// A categorical feature definition.
    pub fn categorical(name: &str, values: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            kind: FeatureKind::Categorical {
                names: values.iter().map(|s| s.to_string()).collect(),
            },
        }
    }

    /// A discretized numeric feature definition.
    pub fn numeric(name: &str, binning: Binning) -> Self {
        Self {
            name: name.to_string(),
            kind: FeatureKind::Numeric { binning },
        }
    }

    /// Number of distinct encoded values, i.e. `|dom(A)|`.
    pub fn cardinality(&self) -> usize {
        match &self.kind {
            FeatureKind::Categorical { names } => names.len(),
            FeatureKind::Numeric { binning } => binning.buckets(),
        }
    }

    /// True when encoded codes are ordinal (numeric buckets).
    pub fn is_ordinal(&self) -> bool {
        matches!(self.kind, FeatureKind::Numeric { .. })
    }

    /// Human-readable rendering of an encoded value.
    pub fn display(&self, code: Cat) -> String {
        match &self.kind {
            FeatureKind::Categorical { names } => names
                .get(code as usize)
                .cloned()
                .unwrap_or_else(|| format!("?{code}")),
            FeatureKind::Numeric { binning } => binning.label(code),
        }
    }
}

/// An ordered list of feature definitions — the feature space
/// `X(A₁, …, Aₙ)` of the paper.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    features: Vec<FeatureDef>,
}

impl Schema {
    /// Creates a schema from feature definitions.
    pub fn new(features: Vec<FeatureDef>) -> Self {
        Self { features }
    }

    /// Number of features `n`.
    #[inline]
    pub fn n_features(&self) -> usize {
        self.features.len()
    }

    /// The feature definitions in order.
    #[inline]
    pub fn features(&self) -> &[FeatureDef] {
        &self.features
    }

    /// The definition of feature `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn feature(&self, i: usize) -> &FeatureDef {
        &self.features[i]
    }

    /// Index of the feature named `name`, if any.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.features.iter().position(|f| f.name == name)
    }

    /// The size of the full feature space `|dom(A₁)| × … × |dom(Aₙ)|`,
    /// saturating at `usize::MAX`.
    pub fn space_size(&self) -> usize {
        self.features
            .iter()
            .map(FeatureDef::cardinality)
            .fold(1usize, |acc, c| acc.saturating_mul(c))
    }

    /// Renders a feature subset as `Name=value ∧ …` for an instance — the
    /// rule form used in the paper's Figure 1.
    pub fn render_conjunction(&self, x: &crate::Instance, feats: &[usize]) -> String {
        feats
            .iter()
            .map(|&f| {
                format!(
                    "{}={}",
                    self.features[f].name,
                    self.features[f].display(x[f])
                )
            })
            .collect::<Vec<_>>()
            .join(" ∧ ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::BinningStrategy;
    use crate::Instance;

    fn sample_schema() -> Schema {
        let vals: Vec<f64> = (0..100).map(f64::from).collect();
        Schema::new(vec![
            FeatureDef::categorical("Credit", &["good", "poor"]),
            FeatureDef::numeric(
                "Income",
                Binning::fit(&vals, 4, BinningStrategy::EqualWidth),
            ),
        ])
    }

    #[test]
    fn cardinality_and_ordinality() {
        let s = sample_schema();
        assert_eq!(s.feature(0).cardinality(), 2);
        assert_eq!(s.feature(1).cardinality(), 4);
        assert!(!s.feature(0).is_ordinal());
        assert!(s.feature(1).is_ordinal());
        assert_eq!(s.space_size(), 8);
    }

    #[test]
    fn display_values() {
        let s = sample_schema();
        assert_eq!(s.feature(0).display(1), "poor");
        assert!(s.feature(1).display(0).starts_with('['));
        assert_eq!(s.feature(0).display(99), "?99", "out-of-range is marked");
    }

    #[test]
    fn index_of_finds_features() {
        let s = sample_schema();
        assert_eq!(s.index_of("Income"), Some(1));
        assert_eq!(s.index_of("Area"), None);
    }

    #[test]
    fn renders_rule_conjunction() {
        let s = sample_schema();
        let x = Instance::new(vec![1, 2]);
        let rule = s.render_conjunction(&x, &[0]);
        assert_eq!(rule, "Credit=poor");
        let rule2 = s.render_conjunction(&x, &[0, 1]);
        assert!(rule2.contains(" ∧ "));
    }

    #[test]
    fn space_size_saturates() {
        let many = (0..200)
            .map(|i| FeatureDef::categorical(&format!("f{i}"), &["a", "b", "c", "d"]))
            .collect();
        let s = Schema::new(many);
        assert_eq!(s.space_size(), usize::MAX);
    }
}
