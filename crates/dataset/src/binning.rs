//! Discretization of numeric columns.
//!
//! The paper's methods operate over discrete features; numeric columns are
//! partitioned into buckets ("#-bucket" in §7.3). [`Binning`] stores the cut
//! points for one column and maps raw values to bucket codes; [`BinSpec`]
//! lets an experiment override the bucket count of individual features, as
//! the Fig. 3h/3i/4d experiments do for `LoanAmount`.

use crate::instance::Cat;

/// How cut points are chosen when fitting a [`Binning`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BinningStrategy {
    /// Buckets of equal numeric width between the observed min and max.
    #[default]
    EqualWidth,
    /// Buckets holding (approximately) equal numbers of observations.
    Quantile,
}

/// Fitted discretization for a single numeric column.
///
/// A binning with `k` buckets stores `k - 1` strictly increasing cut points
/// `edges`; value `v` falls in bucket `i` where `i` is the number of edges
/// `<= v`.
///
/// ```
/// use cce_dataset::{Binning, BinningStrategy};
///
/// let values: Vec<f64> = (0..100).map(f64::from).collect();
/// let b = Binning::fit(&values, 4, BinningStrategy::EqualWidth);
/// assert_eq!(b.buckets(), 4);
/// assert_eq!(b.bucket_of(10.0), 0);
/// assert_eq!(b.bucket_of(60.0), 2);
/// assert_eq!(b.bucket_of(1e9), 3, "out-of-range values clamp");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Binning {
    edges: Vec<f64>,
    /// Observed range, kept for rendering bucket labels such as `"3-4K"`.
    lo: f64,
    hi: f64,
}

impl Binning {
    /// Fits a binning with `buckets` buckets over `values`.
    ///
    /// Degenerate inputs are handled conservatively: constant or empty
    /// columns produce a single bucket; requested bucket counts are clamped
    /// to at least 1 and duplicate quantile cut points are deduplicated (so
    /// the realized bucket count can be lower than requested for heavily
    /// tied data).
    pub fn fit(values: &[f64], buckets: usize, strategy: BinningStrategy) -> Self {
        let buckets = buckets.max(1);
        let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return Self {
                edges: Vec::new(),
                lo: 0.0,
                hi: 0.0,
            };
        }
        let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if lo == hi || buckets == 1 {
            return Self {
                edges: Vec::new(),
                lo,
                hi,
            };
        }
        let mut edges = match strategy {
            BinningStrategy::EqualWidth => {
                let width = (hi - lo) / buckets as f64;
                (1..buckets)
                    .map(|i| lo + width * i as f64)
                    .collect::<Vec<_>>()
            }
            BinningStrategy::Quantile => {
                let mut sorted = finite.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
                (1..buckets)
                    .map(|i| {
                        let rank = i * sorted.len() / buckets;
                        sorted[rank.min(sorted.len() - 1)]
                    })
                    .collect::<Vec<_>>()
            }
        };
        edges.dedup();
        // Edges equal to the minimum would create an empty first bucket.
        edges.retain(|&e| e > lo);
        Self { edges, lo, hi }
    }

    /// Reconstructs a binning from raw parts (the schema-sidecar loader).
    ///
    /// # Panics
    /// Panics unless `edges` is strictly increasing and within `(lo, hi]`.
    pub fn from_parts(edges: Vec<f64>, lo: f64, hi: f64) -> Self {
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly increasing"
        );
        assert!(
            edges.iter().all(|&e| e > lo && e <= hi),
            "edges must lie within (lo, hi]"
        );
        Self { edges, lo, hi }
    }

    /// The cut points (`buckets() - 1` of them).
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Smallest observed value.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Largest observed value.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Number of buckets (always at least 1).
    #[inline]
    pub fn buckets(&self) -> usize {
        self.edges.len() + 1
    }

    /// Maps a raw value to its bucket code.
    #[inline]
    pub fn bucket_of(&self, v: f64) -> Cat {
        // Branchless-ish linear scan; bucket counts are small (<= ~20).
        self.edges.iter().take_while(|&&e| v >= e).count() as Cat
    }

    /// A representative raw value for bucket `b` (the interval midpoint) —
    /// used by models that consume real-valued inputs decoded from bucket
    /// codes (e.g. the entity matcher).
    pub fn midpoint(&self, b: Cat) -> f64 {
        let b = b as usize;
        let lo = if b == 0 { self.lo } else { self.edges[b - 1] };
        let hi = if b >= self.edges.len() {
            self.hi
        } else {
            self.edges[b]
        };
        (lo + hi) / 2.0
    }

    /// Human-readable label of bucket `b`, e.g. `"[3000, 4000)"`.
    pub fn label(&self, b: Cat) -> String {
        let b = b as usize;
        let lo = if b == 0 { self.lo } else { self.edges[b - 1] };
        let hi = if b >= self.edges.len() {
            self.hi
        } else {
            self.edges[b]
        };
        let (lo, hi) = (fmt_edge(lo), fmt_edge(hi));
        if b >= self.edges.len() {
            format!("[{lo}, {hi}]")
        } else {
            format!("[{lo}, {hi})")
        }
    }
}

/// Compact rendering of an interval edge: whole numbers for large
/// magnitudes, a few decimals otherwise.
fn fmt_edge(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Per-feature bucket-count overrides used when encoding a
/// [`crate::RawDataset`].
///
/// The default bucket count applies to every numeric feature not named in
/// `overrides`.
#[derive(Debug, Clone)]
pub struct BinSpec {
    default_buckets: usize,
    strategy: BinningStrategy,
    overrides: Vec<(String, usize)>,
}

impl BinSpec {
    /// A spec discretizing every numeric feature into `default_buckets`
    /// equal-width buckets.
    pub fn uniform(default_buckets: usize) -> Self {
        Self {
            default_buckets,
            strategy: BinningStrategy::EqualWidth,
            overrides: Vec::new(),
        }
    }

    /// Switches the cut-point strategy.
    pub fn with_strategy(mut self, strategy: BinningStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the bucket count of the feature named `feature`.
    pub fn with_override(mut self, feature: &str, buckets: usize) -> Self {
        self.overrides.push((feature.to_string(), buckets));
        self
    }

    /// Bucket count for the feature named `name`.
    pub fn buckets_for(&self, name: &str) -> usize {
        self.overrides
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, b)| b)
            .unwrap_or(self.default_buckets)
    }

    /// The cut-point strategy.
    pub fn strategy(&self) -> BinningStrategy {
        self.strategy
    }
}

impl Default for BinSpec {
    /// Ten equal-width buckets — the paper's default `#-bucket`.
    fn default() -> Self {
        Self::uniform(10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_width_buckets_partition_range() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b = Binning::fit(&vals, 4, BinningStrategy::EqualWidth);
        assert_eq!(b.buckets(), 4);
        assert_eq!(b.bucket_of(0.0), 0);
        assert_eq!(b.bucket_of(24.0), 0);
        assert_eq!(b.bucket_of(25.0), 1);
        assert_eq!(b.bucket_of(99.0), 3);
        assert_eq!(b.bucket_of(1e9), 3, "out-of-range clamps to last bucket");
        assert_eq!(b.bucket_of(-1e9), 0, "out-of-range clamps to first bucket");
    }

    #[test]
    fn quantile_buckets_balance_counts() {
        // Skewed data: equal-width would leave upper buckets nearly empty.
        let vals: Vec<f64> = (0..1000).map(|i| (i as f64 / 10.0).powi(3)).collect();
        let b = Binning::fit(&vals, 5, BinningStrategy::Quantile);
        let mut counts = vec![0usize; b.buckets()];
        for &v in &vals {
            counts[b.bucket_of(v) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max - min <= 2,
            "quantile buckets should be balanced: {counts:?}"
        );
    }

    #[test]
    fn constant_column_single_bucket() {
        let b = Binning::fit(&[5.0; 10], 8, BinningStrategy::EqualWidth);
        assert_eq!(b.buckets(), 1);
        assert_eq!(b.bucket_of(5.0), 0);
        assert_eq!(b.bucket_of(100.0), 0);
    }

    #[test]
    fn empty_column_single_bucket() {
        let b = Binning::fit(&[], 8, BinningStrategy::EqualWidth);
        assert_eq!(b.buckets(), 1);
    }

    #[test]
    fn tied_quantiles_deduplicate() {
        // 90% zeros: most quantile cut points coincide at 0.
        let mut vals = vec![0.0; 90];
        vals.extend((1..=10).map(|i| i as f64));
        let b = Binning::fit(&vals, 10, BinningStrategy::Quantile);
        assert!(b.buckets() <= 10);
        assert!(
            b.buckets() >= 2,
            "distinct high values keep at least one cut"
        );
        // All codes must stay within the realized bucket count.
        for &v in &vals {
            assert!((b.bucket_of(v) as usize) < b.buckets());
        }
    }

    #[test]
    fn labels_cover_all_buckets() {
        let vals: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b = Binning::fit(&vals, 5, BinningStrategy::EqualWidth);
        for code in 0..b.buckets() as Cat {
            let lbl = b.label(code);
            assert!(lbl.starts_with('['), "label renders an interval: {lbl}");
        }
    }

    #[test]
    fn binspec_overrides() {
        let spec = BinSpec::uniform(10).with_override("LoanAmount", 17);
        assert_eq!(spec.buckets_for("LoanAmount"), 17);
        assert_eq!(spec.buckets_for("Income"), 10);
    }
}
