//! Tabular data substrate for the `relative-keys` workspace.
//!
//! The paper evaluates relative keys over nine real-life datasets with
//! *discrete* features (numeric columns are bucketed). This crate provides
//! everything the rest of the workspace needs to stand in for that data
//! layer, built from scratch:
//!
//! * [`Schema`] / [`FeatureDef`] — typed feature definitions with
//!   human-readable value rendering,
//! * [`Binning`] — equal-width and quantile discretization of numeric
//!   columns, re-binnable for the `#-bucket` experiments (Fig. 3h/3i/4d),
//! * [`RawDataset`] → [`Dataset`] — raw typed columns encoded into dense
//!   categorical instances,
//! * [`synth`] — deterministic, seeded generators reproducing the schema and
//!   scale of the paper's 9 datasets (Adult, German, Compas, Loan, Recid and
//!   the four entity-matching pairs),
//! * [`csv`] — a minimal CSV round-trip for persisting generated data.
//!
//! Everything is deterministic given a seed, so every experiment in the
//! workspace is exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binning;
pub mod csv;
pub mod dataset;
pub mod instance;
pub mod raw;
pub mod schema;
pub mod schema_io;
pub mod synth;

pub use binning::{BinSpec, Binning, BinningStrategy};
pub use dataset::Dataset;
pub use instance::{Cat, Instance, Label};
pub use raw::{RawColumn, RawDataset};
pub use schema::{FeatureDef, FeatureKind, Schema};
pub use schema_io::{schema_from_text, schema_to_text, SchemaIoError};
