//! Deterministic synthetic generators reproducing the paper's 9 datasets.
//!
//! We do not have the original UCI/Kaggle/Magellan files; these generators
//! build seeded synthetic stand-ins with the same schema shape (feature
//! count and kinds per Table 1), the same default scale, embedded label
//! rules that models can learn, realistic feature *associations*
//! (correlations between features — the property relative keys exploit,
//! §3.1 benefit (b)), and label noise.
//!
//! Every generator takes `(rows, seed)` and is fully deterministic, so all
//! experiments are reproducible bit-for-bit.

mod util;

pub mod adult;
pub mod compas;
pub mod em;
pub mod german;
pub mod loan;
pub mod noise;
pub mod recid;
pub mod tiers;

pub use em::{EmDataset, Record, RecordPair};

use crate::raw::RawDataset;

/// The five general ML datasets of Table 1, by name.
///
/// `scale` multiplies the paper's default row counts (use e.g. `0.1` for
/// fast test runs, `1.0` for the full evaluation).
pub fn general_dataset(name: &str, scale: f64, seed: u64) -> Option<RawDataset> {
    let rows = |base: usize| ((base as f64 * scale).round() as usize).max(40);
    Some(match name {
        "Adult" => adult::generate(rows(adult::DEFAULT_ROWS), seed),
        "German" => german::generate(rows(german::DEFAULT_ROWS), seed),
        "Compas" => compas::generate(rows(compas::DEFAULT_ROWS), seed),
        "Loan" => loan::generate(rows(loan::DEFAULT_ROWS), seed),
        "Recid" => recid::generate(rows(recid::DEFAULT_ROWS), seed),
        _ => return None,
    })
}

/// Names of the five general ML datasets, in the paper's order.
pub const GENERAL_DATASETS: [&str; 5] = ["Adult", "German", "Compas", "Loan", "Recid"];

/// Names of the four entity-matching datasets, in the paper's order.
pub const EM_DATASETS: [&str; 4] = ["A-G", "D-A", "D-G", "W-A"];

/// The four entity-matching datasets of Table 1, by name.
pub fn em_dataset(name: &str, scale: f64, seed: u64) -> Option<em::EmDataset> {
    let rows = |base: usize| ((base as f64 * scale).round() as usize).max(120);
    Some(match name {
        "A-G" => em::amazon_google(rows(11_460), seed),
        "D-A" => em::dblp_acm(rows(12_363), seed),
        "D-G" => em::dblp_scholar(rows(28_707), seed),
        "W-A" => em::walmart_amazon(rows(10_242), seed),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_knows_all_general_datasets() {
        for name in GENERAL_DATASETS {
            let ds = general_dataset(name, 0.05, 1).unwrap();
            assert!(ds.len() >= 40, "{name} too small");
            assert!(!ds.columns.is_empty());
        }
        assert!(general_dataset("Nope", 1.0, 1).is_none());
    }

    #[test]
    fn registry_knows_all_em_datasets() {
        for name in EM_DATASETS {
            let ds = em_dataset(name, 0.02, 1).unwrap();
            assert!(ds.pairs.len() >= 100, "{name} too small");
        }
        assert!(em_dataset("Nope", 1.0, 1).is_none());
    }

    #[test]
    fn feature_counts_match_table1() {
        assert_eq!(general_dataset("Adult", 0.01, 1).unwrap().n_features(), 14);
        assert_eq!(general_dataset("German", 0.1, 1).unwrap().n_features(), 21);
        assert_eq!(general_dataset("Compas", 0.02, 1).unwrap().n_features(), 11);
        assert_eq!(general_dataset("Loan", 1.0, 1).unwrap().n_features(), 11);
        assert_eq!(general_dataset("Recid", 0.02, 1).unwrap().n_features(), 15);
        assert_eq!(em_dataset("A-G", 0.02, 1).unwrap().attr_names.len(), 3);
        assert_eq!(em_dataset("D-A", 0.02, 1).unwrap().attr_names.len(), 4);
        assert_eq!(em_dataset("D-G", 0.02, 1).unwrap().attr_names.len(), 4);
        assert_eq!(em_dataset("W-A", 0.02, 1).unwrap().attr_names.len(), 5);
    }

    #[test]
    fn generators_are_deterministic() {
        for name in GENERAL_DATASETS {
            let a = general_dataset(name, 0.02, 42).unwrap();
            let b = general_dataset(name, 0.02, 42).unwrap();
            assert_eq!(a.labels, b.labels, "{name} not deterministic");
        }
    }
}
