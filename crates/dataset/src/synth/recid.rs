//! The `Recid` dataset stand-in (6,340 × 15).
//!
//! Predicts recidivism for individuals released from North Carolina prisons
//! in 1978/1980 (Schmidt & Witte). Rule violations, priors, age at release
//! and supervision status drive the ground truth.

use crate::raw::{RawColumn, RawDataset};
use crate::synth::util::{label_from_score, Sampler};

/// Row count used by the paper.
pub const DEFAULT_ROWS: usize = 6_340;

/// Generates the Recid stand-in with `rows` rows.
pub fn generate(rows: usize, seed: u64) -> RawDataset {
    let mut s = Sampler::new(seed ^ 0x52454344); // "RECD"

    let mut white = Vec::with_capacity(rows);
    let mut alchy = Vec::with_capacity(rows);
    let mut junky = Vec::with_capacity(rows);
    let mut supervised = Vec::with_capacity(rows);
    let mut married = Vec::with_capacity(rows);
    let mut felon = Vec::with_capacity(rows);
    let mut workprg = Vec::with_capacity(rows);
    let mut property = Vec::with_capacity(rows);
    let mut person = Vec::with_capacity(rows);
    let mut male = Vec::with_capacity(rows);
    let mut priors = Vec::with_capacity(rows);
    let mut school = Vec::with_capacity(rows);
    let mut rule_viol = Vec::with_capacity(rows);
    let mut age = Vec::with_capacity(rows);
    let mut time_served = Vec::with_capacity(rows);
    let mut labels = Vec::with_capacity(rows);

    for _ in 0..rows {
        let w = s.weighted(&[0.5, 0.5]);
        let al = s.weighted(&[0.75, 0.25]);
        let ju = s.weighted(&[0.8, 0.2]);
        let sup = s.weighted(&[0.55, 0.45]);
        let ma = s.weighted(&[0.72, 0.28]);
        let fe = s.weighted(&[0.45, 0.55]);
        let wp = s.weighted(&[0.5, 0.5]);
        let pr_off = s.weighted(&[0.65, 0.35]);
        let pe_off = s.weighted(&[0.8, 0.2]);
        let ml = s.weighted(&[0.08, 0.92]);
        let pri = s.heavy(1.2).clamp(0.0, 25.0).floor();
        let sch = s.normal(9.5, 2.4).clamp(1.0, 18.0);
        let rv = s.heavy(0.8).clamp(0.0, 20.0).floor();
        let a = (s.heavy(80.0) + 17.0 * 12.0).clamp(16.0 * 12.0, 70.0 * 12.0); // months
        let ts = s.heavy(14.0).clamp(1.0, 240.0);

        // Recidivism rule from the criminology literature: young, prior
        // record, rule violations in prison, drug/alcohol history increase
        // risk; supervision, marriage, schooling decrease it.
        let score = pri * 0.3
            + rv * 0.25
            + if ju == 1 { 0.6 } else { 0.0 }
            + if al == 1 { 0.35 } else { 0.0 }
            - (a / 12.0 - 27.0) * 0.05
            - if sup == 1 { 0.4 } else { 0.0 }
            - if ma == 1 { 0.35 } else { 0.0 }
            - (sch - 9.0) * 0.08
            + if pr_off == 1 { 0.3 } else { 0.0 }
            - 1.0;
        labels.push(label_from_score(&mut s, score, 0.09));

        white.push(w);
        alchy.push(al);
        junky.push(ju);
        supervised.push(sup);
        married.push(ma);
        felon.push(fe);
        workprg.push(wp);
        property.push(pr_off);
        person.push(pe_off);
        male.push(ml);
        priors.push(pri);
        school.push(sch);
        rule_viol.push(rv);
        age.push(a);
        time_served.push(ts);
    }

    let yn = |codes: Vec<u32>| RawColumn::Categorical {
        codes,
        names: vec!["no".into(), "yes".into()],
    };
    RawDataset {
        name: "Recid".into(),
        columns: vec![
            ("White".into(), yn(white)),
            ("Alcohol".into(), yn(alchy)),
            ("Drugs".into(), yn(junky)),
            ("Supervised".into(), yn(supervised)),
            ("Married".into(), yn(married)),
            ("Felony".into(), yn(felon)),
            ("WorkProgram".into(), yn(workprg)),
            ("PropertyOffense".into(), yn(property)),
            ("PersonOffense".into(), yn(person)),
            ("Male".into(), yn(male)),
            ("Priors".into(), RawColumn::Numeric(priors)),
            ("SchoolYears".into(), RawColumn::Numeric(school)),
            ("RuleViolations".into(), RawColumn::Numeric(rule_viol)),
            ("AgeMonths".into(), RawColumn::Numeric(age)),
            ("TimeServedMonths".into(), RawColumn::Numeric(time_served)),
        ],
        labels,
        label_names: vec!["NoRecid".into(), "Recid".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table1() {
        let ds = generate(DEFAULT_ROWS, 5);
        assert_eq!(ds.len(), 6_340);
        assert_eq!(ds.n_features(), 15);
    }

    #[test]
    fn recid_rate_plausible() {
        let p = generate(6_000, 6).positive_rate();
        assert!((0.2..0.6).contains(&p), "positive rate {p}");
    }
}
