//! The `Adult` (census income) dataset stand-in (32,526 × 14).
//!
//! Predicts whether a person earns ≥ 50K/year from census features. The
//! generator correlates education, occupation, hours and age the way the
//! real data does, so learned models and their explanations have realistic
//! structure.

use crate::raw::{RawColumn, RawDataset};
use crate::synth::util::{label_from_score, Sampler};

/// Row count used by the paper.
pub const DEFAULT_ROWS: usize = 32_526;

const WORKCLASS: [&str; 7] = [
    "Private",
    "SelfEmp",
    "SelfEmpInc",
    "FedGov",
    "LocalGov",
    "StateGov",
    "Unemployed",
];
const EDUCATION: [&str; 8] = [
    "HSgrad",
    "SomeCollege",
    "Bachelors",
    "Masters",
    "Doctorate",
    "AssocVoc",
    "11th",
    "7th-8th",
];
const MARITAL: [&str; 5] = [
    "Married",
    "NeverMarried",
    "Divorced",
    "Separated",
    "Widowed",
];
const OCCUPATION: [&str; 10] = [
    "ExecManagerial",
    "ProfSpecialty",
    "Sales",
    "AdmClerical",
    "CraftRepair",
    "OtherService",
    "MachineOp",
    "Transport",
    "HandlersCleaners",
    "TechSupport",
];
const RELATIONSHIP: [&str; 6] = [
    "Husband",
    "Wife",
    "OwnChild",
    "NotInFamily",
    "OtherRelative",
    "Unmarried",
];
const RACE: [&str; 5] = ["White", "Black", "AsianPacific", "AmerIndian", "Other"];
const COUNTRY: [&str; 6] = ["US", "Mexico", "Philippines", "Germany", "Canada", "India"];

/// Generates the Adult stand-in with `rows` rows.
pub fn generate(rows: usize, seed: u64) -> RawDataset {
    let mut s = Sampler::new(seed ^ 0x41445554); // "ADUT"

    let mut age = Vec::with_capacity(rows);
    let mut workclass = Vec::with_capacity(rows);
    let mut fnlwgt = Vec::with_capacity(rows);
    let mut education = Vec::with_capacity(rows);
    let mut edu_num = Vec::with_capacity(rows);
    let mut marital = Vec::with_capacity(rows);
    let mut occupation = Vec::with_capacity(rows);
    let mut relationship = Vec::with_capacity(rows);
    let mut race = Vec::with_capacity(rows);
    let mut sex = Vec::with_capacity(rows);
    let mut cap_gain = Vec::with_capacity(rows);
    let mut cap_loss = Vec::with_capacity(rows);
    let mut hours = Vec::with_capacity(rows);
    let mut country = Vec::with_capacity(rows);
    let mut labels = Vec::with_capacity(rows);

    for _ in 0..rows {
        let a = s.normal(39.0, 13.0).clamp(17.0, 90.0);
        let edu = s.weighted(&[0.32, 0.22, 0.17, 0.06, 0.015, 0.05, 0.08, 0.085]);
        // Years of schooling track the education level (strong association).
        let en = match edu {
            0 => 9.0,
            1 => 10.0,
            2 => 13.0,
            3 => 14.0,
            4 => 16.0,
            5 => 11.0,
            6 => 7.0,
            _ => 4.0,
        } + s.normal(0.0, 0.4);
        let mar = if a < 25.0 {
            s.weighted(&[0.15, 0.7, 0.08, 0.04, 0.03])
        } else {
            s.weighted(&[0.52, 0.2, 0.18, 0.05, 0.05])
        };
        // High-education people skew toward professional occupations.
        let occ = if (2..=4).contains(&edu) {
            s.weighted(&[0.25, 0.3, 0.12, 0.08, 0.05, 0.04, 0.03, 0.03, 0.02, 0.08])
        } else {
            s.weighted(&[0.08, 0.05, 0.12, 0.14, 0.18, 0.15, 0.1, 0.08, 0.07, 0.03])
        };
        let wc = s.weighted(&[0.7, 0.08, 0.04, 0.03, 0.07, 0.05, 0.03]);
        let sx = s.weighted(&[0.67, 0.33]); // Male / Female
        let rel = if mar == 0 {
            if sx == 0 {
                0
            } else {
                1
            }
        } else {
            s.weighted(&[0.0, 0.0, 0.25, 0.45, 0.08, 0.22])
        };
        let rc = s.weighted(&[0.85, 0.09, 0.03, 0.01, 0.02]);
        let ct = s.weighted(&[0.9, 0.03, 0.02, 0.02, 0.02, 0.01]);
        let hw = (s.normal(40.0, 11.0) + if occ <= 1 { 5.0 } else { 0.0 }).clamp(5.0, 99.0);
        let fw = s.heavy(120_000.0).clamp(20_000.0, 900_000.0);
        let cg = if s.flip(0.08) {
            s.heavy(6_000.0).clamp(0.0, 99_999.0)
        } else {
            0.0
        };
        let cl = if s.flip(0.05) {
            s.heavy(1_200.0).clamp(0.0, 4_500.0)
        } else {
            0.0
        };

        // Income rule: education years, managerial/professional occupation,
        // married, hours, age in prime range, capital gains.
        let score = (en - 11.5) * 0.55
            + if occ <= 1 { 1.0 } else { -0.3 }
            + if mar == 0 { 1.3 } else { -0.9 }
            + (hw - 40.0) * 0.05
            + if (35.0..58.0).contains(&a) { 0.5 } else { -0.4 }
            + if cg > 5_000.0 { 2.5 } else { 0.0 }
            - 1.0;
        labels.push(label_from_score(&mut s, score, 0.07));

        age.push(a);
        workclass.push(wc);
        fnlwgt.push(fw);
        education.push(edu);
        edu_num.push(en);
        marital.push(mar);
        occupation.push(occ);
        relationship.push(rel);
        race.push(rc);
        sex.push(sx);
        cap_gain.push(cg);
        cap_loss.push(cl);
        hours.push(hw);
        country.push(ct);
    }

    let cat = |codes: Vec<u32>, names: &[&str]| RawColumn::Categorical {
        codes,
        names: names.iter().map(|s| s.to_string()).collect(),
    };
    RawDataset {
        name: "Adult".into(),
        columns: vec![
            ("Age".into(), RawColumn::Numeric(age)),
            ("Workclass".into(), cat(workclass, &WORKCLASS)),
            ("Fnlwgt".into(), RawColumn::Numeric(fnlwgt)),
            ("Education".into(), cat(education, &EDUCATION)),
            ("EducationNum".into(), RawColumn::Numeric(edu_num)),
            ("MaritalStatus".into(), cat(marital, &MARITAL)),
            ("Occupation".into(), cat(occupation, &OCCUPATION)),
            ("Relationship".into(), cat(relationship, &RELATIONSHIP)),
            ("Race".into(), cat(race, &RACE)),
            ("Sex".into(), cat(sex, &["Male", "Female"])),
            ("CapitalGain".into(), RawColumn::Numeric(cap_gain)),
            ("CapitalLoss".into(), RawColumn::Numeric(cap_loss)),
            ("HoursPerWeek".into(), RawColumn::Numeric(hours)),
            ("NativeCountry".into(), cat(country, &COUNTRY)),
        ],
        labels,
        label_names: vec!["<=50K".into(), ">50K".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Label;

    #[test]
    fn shape_matches_table1() {
        let ds = generate(500, 1);
        assert_eq!(ds.n_features(), 14);
        assert_eq!(ds.len(), 500);
    }

    #[test]
    fn income_rate_roughly_a_quarter() {
        let ds = generate(8000, 2);
        let p = ds.positive_rate();
        assert!((0.1..0.5).contains(&p), "positive rate {p}");
    }

    #[test]
    fn education_predicts_income() {
        let ds = generate(8000, 3);
        let edu = match &ds.columns[3].1 {
            RawColumn::Categorical { codes, .. } => codes.clone(),
            _ => panic!(),
        };
        let rate = |pred: &dyn Fn(u32) -> bool| {
            let (mut pos, mut tot) = (0usize, 0usize);
            for (i, &e) in edu.iter().enumerate() {
                if pred(e) {
                    tot += 1;
                    pos += usize::from(ds.labels[i] == Label(1));
                }
            }
            pos as f64 / tot.max(1) as f64
        };
        let high = rate(&|e| (2..=4).contains(&e));
        let low = rate(&|e| e >= 6);
        assert!(high > low + 0.2, "high={high} low={low}");
    }
}
