//! Noise injection and concept drift for the monitoring experiments.
//!
//! §7.4 ("An application"): the *noise* version of a dataset replaces the
//! last 40% of inference instances with randomly generated ones, triggering
//! a dip in model accuracy that CCE's succinctness monitoring should pick
//! up (Fig. 3l/3m).

use rand::Rng;

use crate::dataset::Dataset;
use crate::instance::{Cat, Instance};

/// Replaces instances from `start_frac` of the way through `ds` to the end
/// with uniformly random instances over the feature space.
///
/// Labels are left untouched — in the monitoring experiment they are
/// re-predicted by the model downstream; what matters is that the
/// *instances* no longer follow the data distribution.
pub fn randomize_tail(ds: &mut Dataset, start_frac: f64, rng: &mut impl Rng) {
    let start = ((ds.len() as f64) * start_frac.clamp(0.0, 1.0)) as usize;
    let schema = ds.schema_arc();
    let labels = ds.labels().to_vec();
    let mut instances = ds.instances().to_vec();
    for x in instances.iter_mut().skip(start) {
        *x = random_instance(&schema, rng);
    }
    *ds = Dataset::with_shared_schema(ds.name().to_string(), schema, instances, labels);
}

/// A uniformly random instance over `schema`'s feature space.
pub fn random_instance(schema: &crate::Schema, rng: &mut impl Rng) -> Instance {
    Instance::new(
        (0..schema.n_features())
            .map(|f| rng.gen_range(0..schema.feature(f).cardinality()) as Cat)
            .collect(),
    )
}

/// Perturbs instances from `start_frac` onward by resampling each feature
/// from the dataset's *empirical marginal* with probability `p`.
///
/// Unlike [`randomize_tail`]'s uniform noise, marginal noise stays on the
/// data manifold: perturbed instances still look like plausible inputs, so
/// they frequently agree with monitored keys while scrambling the label
/// structure — which is what makes the succinctness-based drift signal of
/// §7.4 fire.
pub fn perturb_tail(ds: &mut Dataset, start_frac: f64, p: f64, rng: &mut impl Rng) {
    let start = ((ds.len() as f64) * start_frac.clamp(0.0, 1.0)) as usize;
    let schema = ds.schema_arc();
    let n = schema.n_features();
    // Marginals of the pre-perturbation data.
    let marginals: Vec<Vec<u32>> = (0..n).map(|f| ds.marginal(f)).collect();
    let labels = ds.labels().to_vec();
    let mut instances = ds.instances().to_vec();
    for x in instances.iter_mut().skip(start) {
        let mut vals: Vec<Cat> = x.values().to_vec();
        for (f, v) in vals.iter_mut().enumerate() {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                *v = sample_marginal(&marginals[f], rng);
            }
        }
        *x = Instance::new(vals);
    }
    *ds = Dataset::with_shared_schema(ds.name().to_string(), schema, instances, labels);
}

fn sample_marginal(counts: &[u32], rng: &mut impl Rng) -> Cat {
    let total: u32 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let mut t = rng.gen_range(0..total);
    for (code, &c) in counts.iter().enumerate() {
        if t < c {
            return code as Cat;
        }
        t -= c;
    }
    (counts.len() - 1) as Cat
}

/// Flips a fraction `frac` of labels in place, simulating concept drift in
/// the *labeling* process (used by drift-robustness tests).
pub fn flip_labels(ds: &mut Dataset, frac: f64, rng: &mut impl Rng) {
    let mut labels = ds.labels().to_vec();
    let distinct = ds.distinct_labels();
    if distinct.len() < 2 {
        return;
    }
    for l in labels.iter_mut() {
        if rng.gen_bool(frac.clamp(0.0, 1.0)) {
            let alternatives: Vec<_> = distinct.iter().filter(|d| **d != *l).collect();
            *l = *alternatives[rng.gen_range(0..alternatives.len())];
        }
    }
    ds.set_labels(labels);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{FeatureDef, Schema};
    use crate::Label;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let schema = Schema::new(vec![
            FeatureDef::categorical("a", &["x", "y"]),
            FeatureDef::categorical("b", &["p", "q", "r"]),
        ]);
        let instances = (0..100).map(|_| Instance::new(vec![0, 0])).collect();
        let labels = (0..100).map(|_| Label(0)).collect();
        Dataset::new("toy".into(), schema, instances, labels)
    }

    #[test]
    fn tail_randomization_leaves_head_alone() {
        let mut ds = toy();
        let mut rng = StdRng::seed_from_u64(1);
        randomize_tail(&mut ds, 0.6, &mut rng);
        for i in 0..60 {
            assert_eq!(ds.instance(i).values(), &[0, 0]);
        }
        let changed = (60..100)
            .filter(|&i| ds.instance(i).values() != [0, 0])
            .count();
        assert!(changed > 10, "tail should be randomized, changed={changed}");
    }

    #[test]
    fn random_instances_stay_in_domain() {
        let ds = toy();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let x = random_instance(ds.schema(), &mut rng);
            assert!(x[0] < 2);
            assert!(x[1] < 3);
        }
    }

    #[test]
    fn perturb_tail_stays_in_domain_and_spares_head() {
        let mut ds = toy();
        let mut rng = StdRng::seed_from_u64(5);
        perturb_tail(&mut ds, 0.5, 0.8, &mut rng);
        for i in 0..50 {
            assert_eq!(ds.instance(i).values(), &[0, 0]);
        }
        for i in 50..100 {
            assert!(ds.instance(i)[0] < 2);
            assert!(ds.instance(i)[1] < 3);
        }
        // Marginals of the toy data are concentrated on code 0, so most
        // perturbed values stay 0 — the "plausible noise" property.
        let zeros = (50..100)
            .filter(|&i| ds.instance(i).values() == [0, 0])
            .count();
        assert!(
            zeros > 40,
            "marginal noise should mostly re-draw observed values"
        );
    }

    #[test]
    fn flip_labels_changes_roughly_frac() {
        let mut ds = toy();
        // Make labels 0/1 mixed so flipping has alternatives.
        let labels = (0..100).map(|i| Label(u32::from(i % 2 == 0))).collect();
        ds.set_labels(labels);
        let mut rng = StdRng::seed_from_u64(3);
        let before = ds.labels().to_vec();
        flip_labels(&mut ds, 0.3, &mut rng);
        let flipped = before
            .iter()
            .zip(ds.labels())
            .filter(|(a, b)| a != b)
            .count();
        assert!((15..=45).contains(&flipped), "flipped={flipped}");
    }

    #[test]
    fn flip_labels_noop_with_single_class() {
        let mut ds = toy();
        let before = ds.labels().to_vec();
        flip_labels(&mut ds, 0.9, &mut StdRng::seed_from_u64(4));
        assert_eq!(before, ds.labels());
    }
}
