//! A 3-class synthetic dataset (`Tiers`): credit-risk tiers Low / Medium /
//! High.
//!
//! The paper's evaluation datasets are binary, but relative keys are
//! defined for arbitrary label spaces; this generator exercises the
//! multiclass path of the whole stack (models, keys, monitors).

use crate::instance::Label;
use crate::raw::{RawColumn, RawDataset};
use crate::synth::util::Sampler;

/// Default row count.
pub const DEFAULT_ROWS: usize = 2_000;

/// Generates the 3-class tiers dataset with `rows` rows.
pub fn generate(rows: usize, seed: u64) -> RawDataset {
    let mut s = Sampler::new(seed ^ 0x54495253); // "TIRS"

    let mut income = Vec::with_capacity(rows);
    let mut debt = Vec::with_capacity(rows);
    let mut history = Vec::with_capacity(rows);
    let mut employment = Vec::with_capacity(rows);
    let mut age = Vec::with_capacity(rows);
    let mut region = Vec::with_capacity(rows);
    let mut defaults = Vec::with_capacity(rows);
    let mut utilization = Vec::with_capacity(rows);
    let mut labels = Vec::with_capacity(rows);

    for _ in 0..rows {
        let inc = (2_000.0 + s.heavy(2_500.0)).clamp(800.0, 40_000.0);
        let db = s.heavy(8_000.0).clamp(0.0, 120_000.0);
        let hist = s.weighted(&[0.2, 0.5, 0.3]); // none / fair / good
        let emp = s.weighted(&[0.1, 0.25, 0.4, 0.25]); // none/part/full/self
        let a = s.normal(40.0, 13.0).clamp(18.0, 80.0);
        let reg = s.weighted(&[0.4, 0.35, 0.25]);
        let def = if s.flip(0.18) {
            1 + s.below(4) as u32
        } else {
            0
        };
        let util = s.unit().clamp(0.0, 1.0);

        // Latent risk score → three tiers by thresholds.
        let score = db / inc.max(1.0) * 0.4 + f64::from(def) * 1.1 + util * 1.4
            - match hist {
                2 => 1.2,
                1 => 0.3,
                _ => -0.6,
            }
            - if emp >= 2 { 0.6 } else { -0.4 }
            - (a - 25.0).max(0.0) * 0.01
            + s.normal(0.0, 0.4);
        let tier = if score < 0.8 {
            0
        } else if score < 2.2 {
            1
        } else {
            2
        };
        labels.push(Label(tier));

        income.push(inc);
        debt.push(db);
        history.push(hist);
        employment.push(emp);
        age.push(a);
        region.push(reg);
        defaults.push(def);
        utilization.push(util);
    }

    let cat = |codes: Vec<u32>, names: &[&str]| RawColumn::Categorical {
        codes,
        names: names.iter().map(|s| s.to_string()).collect(),
    };
    RawDataset {
        name: "Tiers".into(),
        columns: vec![
            ("Income".into(), RawColumn::Numeric(income)),
            ("Debt".into(), RawColumn::Numeric(debt)),
            ("History".into(), cat(history, &["none", "fair", "good"])),
            (
                "Employment".into(),
                cat(employment, &["none", "part", "full", "self"]),
            ),
            ("Age".into(), RawColumn::Numeric(age)),
            ("Region".into(), cat(region, &["north", "south", "coast"])),
            (
                "PriorDefaults".into(),
                RawColumn::Numeric(defaults.into_iter().map(f64::from).collect()),
            ),
            ("Utilization".into(), RawColumn::Numeric(utilization)),
        ],
        labels,
        label_names: vec!["LowRisk".into(), "MediumRisk".into(), "HighRisk".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_classes_present_and_balancedish() {
        let ds = generate(3_000, 1);
        let mut counts = [0usize; 3];
        for l in &ds.labels {
            counts[l.0 as usize] += 1;
        }
        for (c, &k) in counts.iter().enumerate() {
            assert!(
                k as f64 / ds.len() as f64 > 0.08,
                "class {c} too rare: {counts:?}"
            );
        }
    }

    #[test]
    fn shape() {
        let ds = generate(100, 2);
        assert_eq!(ds.n_features(), 8);
        assert_eq!(ds.label_names.len(), 3);
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(200, 9).labels, generate(200, 9).labels);
    }
}
