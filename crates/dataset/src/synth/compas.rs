//! The `Compas` dataset stand-in (6,172 × 11).
//!
//! Scores a criminal defendant's likelihood of re-offending (the COMPAS
//! risk-assessment setting). Prior counts and age drive the ground truth.

use crate::raw::{RawColumn, RawDataset};
use crate::synth::util::{label_from_score, Sampler};

/// Row count used by the paper.
pub const DEFAULT_ROWS: usize = 6_172;

/// Generates the Compas stand-in with `rows` rows.
pub fn generate(rows: usize, seed: u64) -> RawDataset {
    let mut s = Sampler::new(seed ^ 0x434f4d50); // "COMP"

    let mut sex = Vec::with_capacity(rows);
    let mut age = Vec::with_capacity(rows);
    let mut age_cat = Vec::with_capacity(rows);
    let mut race = Vec::with_capacity(rows);
    let mut juv_fel = Vec::with_capacity(rows);
    let mut juv_misd = Vec::with_capacity(rows);
    let mut juv_other = Vec::with_capacity(rows);
    let mut priors = Vec::with_capacity(rows);
    let mut charge = Vec::with_capacity(rows);
    let mut days_screen = Vec::with_capacity(rows);
    let mut stay = Vec::with_capacity(rows);
    let mut labels = Vec::with_capacity(rows);

    for _ in 0..rows {
        let sx = s.weighted(&[0.81, 0.19]); // Male / Female
        let a = s.heavy(12.0).clamp(0.0, 60.0) + 18.0;
        let ac = if a < 25.0 {
            0
        } else if a < 45.0 {
            1
        } else {
            2
        };
        let rc = s.weighted(&[0.51, 0.34, 0.09, 0.06]);
        // Younger defendants have more juvenile history on record.
        let juvenile_rate = if ac == 0 { 0.35 } else { 0.1 };
        let jf = if s.flip(juvenile_rate) {
            s.below(3) as f64 + 1.0
        } else {
            0.0
        };
        let jm = if s.flip(juvenile_rate) {
            s.below(4) as f64 + 1.0
        } else {
            0.0
        };
        let jo = if s.flip(juvenile_rate * 0.7) {
            s.below(3) as f64 + 1.0
        } else {
            0.0
        };
        let pr = (s.heavy(2.0) + jf + jm).clamp(0.0, 38.0).floor();
        let ch = s.weighted(&[0.64, 0.36]); // Felony / Misdemeanor
        let dsb = s.normal(0.0, 60.0).clamp(-30.0, 600.0);
        let st = s.heavy(12.0).clamp(0.0, 800.0);

        // Recidivism rule: priors and youth dominate; felony charge and long
        // stays add risk.
        let score = pr * 0.28
            + if ac == 0 {
                1.0
            } else if ac == 2 {
                -0.9
            } else {
                0.0
            }
            + (jf + jm + jo) * 0.2
            + if ch == 0 { 0.25 } else { -0.1 }
            + (st / 400.0)
            + if sx == 0 { 0.15 } else { -0.15 }
            - 1.3;
        labels.push(label_from_score(&mut s, score, 0.09));

        sex.push(sx);
        age.push(a);
        age_cat.push(ac);
        race.push(rc);
        juv_fel.push(jf);
        juv_misd.push(jm);
        juv_other.push(jo);
        priors.push(pr);
        charge.push(ch);
        days_screen.push(dsb);
        stay.push(st);
    }

    let cat = |codes: Vec<u32>, names: &[&str]| RawColumn::Categorical {
        codes,
        names: names.iter().map(|s| s.to_string()).collect(),
    };
    RawDataset {
        name: "Compas".into(),
        columns: vec![
            ("Sex".into(), cat(sex, &["Male", "Female"])),
            ("Age".into(), RawColumn::Numeric(age)),
            ("AgeCat".into(), cat(age_cat, &["lt25", "25to45", "gt45"])),
            (
                "Race".into(),
                cat(race, &["AfricanAmerican", "Caucasian", "Hispanic", "Other"]),
            ),
            ("JuvFelCount".into(), RawColumn::Numeric(juv_fel)),
            ("JuvMisdCount".into(), RawColumn::Numeric(juv_misd)),
            ("JuvOtherCount".into(), RawColumn::Numeric(juv_other)),
            ("PriorsCount".into(), RawColumn::Numeric(priors)),
            (
                "ChargeDegree".into(),
                cat(charge, &["Felony", "Misdemeanor"]),
            ),
            ("DaysBScreening".into(), RawColumn::Numeric(days_screen)),
            ("LengthOfStay".into(), RawColumn::Numeric(stay)),
        ],
        labels,
        label_names: vec!["NoRecid".into(), "Recid".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Label;

    #[test]
    fn shape_matches_table1() {
        let ds = generate(DEFAULT_ROWS, 5);
        assert_eq!(ds.len(), 6_172);
        assert_eq!(ds.n_features(), 11);
    }

    #[test]
    fn recid_rate_plausible() {
        let p = generate(6_000, 6).positive_rate();
        assert!((0.25..0.65).contains(&p), "positive rate {p}");
    }

    #[test]
    fn priors_predict_recidivism() {
        let ds = generate(6_000, 7);
        let priors = match &ds.columns[7].1 {
            RawColumn::Numeric(v) => v.clone(),
            _ => panic!(),
        };
        let rate = |pred: &dyn Fn(f64) -> bool| {
            let (mut pos, mut tot) = (0usize, 0usize);
            for (i, &p) in priors.iter().enumerate() {
                if pred(p) {
                    tot += 1;
                    pos += usize::from(ds.labels[i] == Label(1));
                }
            }
            pos as f64 / tot.max(1) as f64
        };
        assert!(rate(&|p| p >= 5.0) > rate(&|p| p == 0.0) + 0.2);
    }
}
