//! The `Loan` dataset stand-in (Kaggle loan-eligibility, 614 × 11).
//!
//! This is the paper's running example (Fig. 1/2, Table 3): loan
//! applications with demographics, incomes, a credit record, and the
//! approval decision. The generator embeds the association the case study
//! relies on — urban applicants dominate, credit record is decisive, and
//! income interacts with the loan amount — so that a key relative to the
//! (urban-leaning) inference context is shorter than a formal explanation
//! over the full feature space.

use crate::raw::{RawColumn, RawDataset};
use crate::synth::util::{label_from_score, Sampler};

/// Row count of the original Kaggle dataset.
pub const DEFAULT_ROWS: usize = 614;

/// Generates the Loan stand-in with `rows` applications.
pub fn generate(rows: usize, seed: u64) -> RawDataset {
    let mut s = Sampler::new(seed ^ 0x4c4f414e); // "LOAN"

    let mut gender = Vec::with_capacity(rows);
    let mut married = Vec::with_capacity(rows);
    let mut dependents = Vec::with_capacity(rows);
    let mut education = Vec::with_capacity(rows);
    let mut self_emp = Vec::with_capacity(rows);
    let mut income = Vec::with_capacity(rows);
    let mut coincome = Vec::with_capacity(rows);
    let mut credit = Vec::with_capacity(rows);
    let mut amount = Vec::with_capacity(rows);
    let mut term = Vec::with_capacity(rows);
    let mut area = Vec::with_capacity(rows);
    let mut labels = Vec::with_capacity(rows);

    for _ in 0..rows {
        // Area skews urban: the bank of Example 1 targets urban customers.
        let a = s.weighted(&[0.62, 0.23, 0.15]); // Urban / Semiurban / Rural
        let g = s.weighted(&[0.8, 0.2]); // Male / Female
        let m = s.weighted(&[0.35, 0.65]); // No / Yes
        let dep = if m == 1 {
            s.weighted(&[0.4, 0.25, 0.2, 0.15])
        } else {
            s.weighted(&[0.8, 0.12, 0.05, 0.03])
        };
        let edu = s.weighted(&[0.78, 0.22]); // Graduate / NotGraduate
        let se = s.weighted(&[0.86, 0.14]); // No / Yes

        // Income correlates with area and education.
        let base = 2600.0
            + if a == 0 {
                1500.0
            } else if a == 1 {
                600.0
            } else {
                0.0
            }
            + if edu == 0 { 1200.0 } else { 0.0 };
        let inc = (base + s.heavy(900.0)).clamp(800.0, 20_000.0);
        let co = if m == 1 && s.flip(0.7) {
            (s.heavy(1100.0)).clamp(0.0, 10_000.0)
        } else {
            0.0
        };
        // Credit history is good for ~78% of applicants, slightly better for
        // graduates.
        let cr = if s.flip(if edu == 0 { 0.82 } else { 0.68 }) {
            0u32
        } else {
            1
        }; // good / poor
        let t = s.weighted(&[0.08, 0.12, 0.12, 0.68]); // 120/180/240/360 months
        let amt = ((inc + 0.6 * co) * (2.0 + 4.0 * s.unit())).clamp(1_000.0, 60_000.0);

        // Ground-truth decision rule: credit record dominates; affordability
        // (income vs monthly repayment) matters at the margin.
        let months = [120.0, 180.0, 240.0, 360.0][t as usize];
        let monthly = amt / months * 12.0;
        // Poor credit is a heavy but not absolute penalty: strong earners
        // with modest repayments still get approved (the paper's x₁ — poor
        // credit, higher income, Approved — must be a live phenomenon).
        let afford = (inc + 0.5 * co) * 0.42 - monthly;
        let score = if cr == 1 {
            -1.2 + afford / 2_500.0
        } else {
            0.6 + afford / 1_500.0
        };
        let y = label_from_score(&mut s, score, 0.05);

        gender.push(g);
        married.push(m);
        dependents.push(dep);
        education.push(edu);
        self_emp.push(se);
        income.push(inc);
        coincome.push(co);
        credit.push(cr);
        amount.push(amt);
        term.push(t);
        area.push(a);
        labels.push(y);
    }

    RawDataset {
        name: "Loan".into(),
        columns: vec![
            (
                "Gender".into(),
                RawColumn::Categorical {
                    codes: gender,
                    names: names(&["Male", "Female"]),
                },
            ),
            (
                "Married".into(),
                RawColumn::Categorical {
                    codes: married,
                    names: names(&["No", "Yes"]),
                },
            ),
            (
                "Dependents".into(),
                RawColumn::Categorical {
                    codes: dependents,
                    names: names(&["0", "1", "2", "3+"]),
                },
            ),
            (
                "Education".into(),
                RawColumn::Categorical {
                    codes: education,
                    names: names(&["Graduate", "NotGraduate"]),
                },
            ),
            (
                "SelfEmployed".into(),
                RawColumn::Categorical {
                    codes: self_emp,
                    names: names(&["No", "Yes"]),
                },
            ),
            ("Income".into(), RawColumn::Numeric(income)),
            ("CoIncome".into(), RawColumn::Numeric(coincome)),
            (
                "Credit".into(),
                RawColumn::Categorical {
                    codes: credit,
                    names: names(&["good", "poor"]),
                },
            ),
            ("LoanAmount".into(), RawColumn::Numeric(amount)),
            (
                "LoanTerm".into(),
                RawColumn::Categorical {
                    codes: term,
                    names: names(&["120", "180", "240", "360"]),
                },
            ),
            (
                "Area".into(),
                RawColumn::Categorical {
                    codes: area,
                    names: names(&["Urban", "Semiurban", "Rural"]),
                },
            ),
        ],
        labels,
        label_names: vec!["Denied".into(), "Approved".into()],
    }
}

fn names(xs: &[&str]) -> Vec<String> {
    xs.iter().map(|s| s.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::BinSpec;
    use crate::instance::Label;

    #[test]
    fn has_paper_shape() {
        let ds = generate(DEFAULT_ROWS, 7);
        assert_eq!(ds.len(), 614);
        assert_eq!(ds.n_features(), 11);
        assert_eq!(ds.label_names, vec!["Denied", "Approved"]);
    }

    #[test]
    fn label_balance_reasonable() {
        let ds = generate(2000, 7);
        let p = ds.positive_rate();
        assert!((0.35..0.85).contains(&p), "positive rate {p}");
    }

    #[test]
    fn credit_dominates_decision() {
        // Among poor-credit applicants denial should dominate.
        let ds = generate(4000, 9);
        let credit_col = match &ds.columns[7].1 {
            RawColumn::Categorical { codes, .. } => codes.clone(),
            _ => panic!("Credit should be categorical"),
        };
        let (mut poor_denied, mut poor_total) = (0, 0);
        for (i, &c) in credit_col.iter().enumerate() {
            if c == 1 {
                poor_total += 1;
                if ds.labels[i] == Label(0) {
                    poor_denied += 1;
                }
            }
        }
        assert!(poor_total > 100);
        assert!(poor_denied as f64 / poor_total as f64 > 0.7);
    }

    #[test]
    fn urban_majority() {
        let ds = generate(3000, 11);
        let area = match &ds.columns[10].1 {
            RawColumn::Categorical { codes, .. } => codes.clone(),
            _ => panic!(),
        };
        let urban = area.iter().filter(|&&a| a == 0).count();
        assert!(urban as f64 / area.len() as f64 > 0.5);
    }

    #[test]
    fn encodes_cleanly() {
        let ds = generate(300, 3).encode(&BinSpec::uniform(10));
        assert_eq!(ds.len(), 300);
        assert_eq!(ds.schema().n_features(), 11);
        assert_eq!(ds.schema().index_of("LoanAmount"), Some(8));
        assert!(
            ds.schema().feature(5).is_ordinal(),
            "Income is binned numeric"
        );
    }
}
