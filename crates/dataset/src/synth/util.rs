//! Shared sampling machinery for the synthetic generators.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::instance::{Cat, Label};

/// A seeded sampler with the distributions the generators need.
pub(crate) struct Sampler {
    rng: StdRng,
}

impl Sampler {
    pub(crate) fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform in `[0, 1)`.
    pub(crate) fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform integer in `[0, n)`.
    pub(crate) fn below(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Bernoulli with probability `p`.
    pub(crate) fn flip(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Weighted categorical draw; returns the index of the chosen weight.
    pub(crate) fn weighted(&mut self, weights: &[f64]) -> Cat {
        let total: f64 = weights.iter().sum();
        let mut t = self.rng.gen::<f64>() * total;
        for (i, &w) in weights.iter().enumerate() {
            t -= w;
            if t <= 0.0 {
                return i as Cat;
            }
        }
        (weights.len() - 1) as Cat
    }

    /// Approximately normal via the sum of 12 uniforms (Irwin–Hall),
    /// shifted and scaled to `mean`/`sd`. Plenty for synthetic data.
    pub(crate) fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        let s: f64 = (0..12).map(|_| self.rng.gen::<f64>()).sum();
        mean + (s - 6.0) * sd
    }

    /// Log-normal-ish heavy-tailed positive value.
    pub(crate) fn heavy(&mut self, scale: f64) -> f64 {
        let n = self.normal(0.0, 1.0);
        scale * n.exp()
    }

    /// Access to the raw RNG for anything exotic.
    pub(crate) fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Turns a latent score into a binary label with flip-noise `noise`.
pub(crate) fn label_from_score(s: &mut Sampler, score: f64, noise: f64) -> Label {
    let base = score > 0.0;
    let flipped = if s.flip(noise) { !base } else { base };
    Label(u32::from(flipped))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_respects_zero_weights() {
        let mut s = Sampler::new(1);
        for _ in 0..100 {
            let c = s.weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(c, 1);
        }
    }

    #[test]
    fn weighted_covers_support() {
        let mut s = Sampler::new(2);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[s.weighted(&[1.0, 1.0, 1.0]) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut s = Sampler::new(3);
        let xs: Vec<f64> = (0..20_000).map(|_| s.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean={mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd={}", var.sqrt());
    }

    #[test]
    fn label_noise_zero_is_pure_threshold() {
        let mut s = Sampler::new(4);
        assert_eq!(label_from_score(&mut s, 1.0, 0.0), Label(1));
        assert_eq!(label_from_score(&mut s, -1.0, 0.0), Label(0));
    }
}
