//! The `German` credit dataset stand-in (1,000 × 21).
//!
//! Classifies credit applicants into good/bad risk from account status,
//! credit history, purpose, amounts and demographics.

use crate::raw::{RawColumn, RawDataset};
use crate::synth::util::{label_from_score, Sampler};

/// Row count of the original dataset.
pub const DEFAULT_ROWS: usize = 1_000;

/// Generates the German-credit stand-in with `rows` rows.
pub fn generate(rows: usize, seed: u64) -> RawDataset {
    let mut s = Sampler::new(seed ^ 0x4745524d); // "GERM"

    let mut cols: Vec<Vec<u32>> = (0..15).map(|_| Vec::with_capacity(rows)).collect();
    let mut duration = Vec::with_capacity(rows);
    let mut amount = Vec::with_capacity(rows);
    let mut rate = Vec::with_capacity(rows);
    let mut residence = Vec::with_capacity(rows);
    let mut age = Vec::with_capacity(rows);
    let mut existing = Vec::with_capacity(rows);
    let mut labels = Vec::with_capacity(rows);

    for _ in 0..rows {
        let status = s.weighted(&[0.27, 0.27, 0.06, 0.4]); // <0 / 0-200 / >=200 / none
        let history = s.weighted(&[0.04, 0.05, 0.53, 0.09, 0.29]);
        let purpose = s.weighted(&[0.24, 0.22, 0.18, 0.11, 0.1, 0.05, 0.05, 0.05]);
        let savings = s.weighted(&[0.6, 0.1, 0.07, 0.05, 0.18]);
        let employment = s.weighted(&[0.06, 0.17, 0.34, 0.17, 0.26]);
        let personal = s.weighted(&[0.55, 0.31, 0.09, 0.05]);
        let debtors = s.weighted(&[0.91, 0.04, 0.05]);
        let property = s.weighted(&[0.28, 0.23, 0.33, 0.16]);
        let install_other = s.weighted(&[0.14, 0.05, 0.81]);
        let housing = s.weighted(&[0.18, 0.71, 0.11]);
        let job = s.weighted(&[0.02, 0.2, 0.63, 0.15]);
        let phone = s.weighted(&[0.6, 0.4]);
        let foreign = s.weighted(&[0.96, 0.04]);
        let dependents = s.weighted(&[0.84, 0.16]);
        let risk_flag = s.weighted(&[0.7, 0.3]); // extra 21st feature: prior delinquency flag

        let a = s.normal(35.0, 11.0).clamp(19.0, 75.0);
        let dur = s.normal(21.0, 12.0).clamp(4.0, 72.0);
        let amt = s.heavy(2_500.0).clamp(250.0, 18_500.0) + dur * 40.0;
        let rt = 1.0 + s.below(4) as f64;
        let res = 1.0 + s.below(4) as f64;
        let ex = 1.0 + s.weighted(&[0.63, 0.33, 0.03, 0.01]) as f64;

        // Good credit rule: healthy account status + history, moderate
        // amounts/duration, savings, stable employment, no delinquency.
        let score = match status {
            0 => -1.2,
            1 => -0.4,
            2 => 0.6,
            _ => 1.0,
        } + match history {
            0 | 1 => -1.0,
            2 => 0.3,
            _ => 0.8,
        } + if savings >= 2 { 0.5 } else { -0.1 }
            + if employment >= 3 { 0.4 } else { -0.2 }
            - (dur - 20.0) * 0.03
            - (amt / 10_000.0)
            + if risk_flag == 1 { -1.1 } else { 0.3 }
            + (a - 30.0) * 0.01
            + 0.8;
        labels.push(label_from_score(&mut s, score, 0.08));

        for (c, v) in cols.iter_mut().zip([
            status,
            history,
            purpose,
            savings,
            employment,
            personal,
            debtors,
            property,
            install_other,
            housing,
            job,
            phone,
            foreign,
            dependents,
            risk_flag,
        ]) {
            c.push(v);
        }
        duration.push(dur);
        amount.push(amt);
        rate.push(rt);
        residence.push(res);
        age.push(a);
        existing.push(ex);
    }

    let cat_names: [(&str, &[&str]); 15] = [
        ("Status", &["lt0", "0to200", "ge200", "none"]),
        (
            "History",
            &["none", "allPaidHere", "paidTilNow", "delayed", "critical"],
        ),
        (
            "Purpose",
            &[
                "car",
                "furniture",
                "radio_tv",
                "business",
                "education",
                "repairs",
                "retraining",
                "other",
            ],
        ),
        (
            "Savings",
            &["lt100", "100to500", "500to1000", "ge1000", "unknown"],
        ),
        (
            "Employment",
            &["unemployed", "lt1y", "1to4y", "4to7y", "ge7y"],
        ),
        (
            "PersonalStatus",
            &["maleSingle", "femaleDivSep", "maleMarried", "maleDivSep"],
        ),
        ("OtherDebtors", &["none", "coApplicant", "guarantor"]),
        ("Property", &["realEstate", "savingsIns", "car", "none"]),
        ("OtherInstall", &["bank", "stores", "none"]),
        ("Housing", &["rent", "own", "free"]),
        (
            "Job",
            &["unskilledNonRes", "unskilledRes", "skilled", "management"],
        ),
        ("Telephone", &["none", "yes"]),
        ("ForeignWorker", &["yes", "no"]),
        ("Dependents", &["1", "2+"]),
        ("PriorDelinquency", &["no", "yes"]),
    ];

    let mut columns: Vec<(String, RawColumn)> = Vec::with_capacity(21);
    for ((name, names), codes) in cat_names.into_iter().zip(cols) {
        columns.push((
            name.to_string(),
            RawColumn::Categorical {
                codes,
                names: names.iter().map(|s| s.to_string()).collect(),
            },
        ));
    }
    columns.push(("Duration".into(), RawColumn::Numeric(duration)));
    columns.push(("Amount".into(), RawColumn::Numeric(amount)));
    columns.push(("InstallmentRate".into(), RawColumn::Numeric(rate)));
    columns.push(("ResidenceSince".into(), RawColumn::Numeric(residence)));
    columns.push(("Age".into(), RawColumn::Numeric(age)));
    columns.push(("ExistingCredits".into(), RawColumn::Numeric(existing)));

    RawDataset {
        name: "German".into(),
        columns,
        labels,
        label_names: vec!["bad".into(), "good".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table1() {
        let ds = generate(DEFAULT_ROWS, 5);
        assert_eq!(ds.len(), 1_000);
        assert_eq!(ds.n_features(), 21);
    }

    #[test]
    fn mostly_good_credit() {
        // The real German dataset is ~70% good.
        let p = generate(5_000, 6).positive_rate();
        assert!((0.45..0.85).contains(&p), "positive rate {p}");
    }

    #[test]
    fn delinquency_hurts() {
        let ds = generate(5_000, 7);
        let flag = match &ds.columns[14].1 {
            RawColumn::Categorical { codes, .. } => codes.clone(),
            _ => panic!(),
        };
        let (mut bad_with, mut tot_with) = (0usize, 0usize);
        let (mut bad_without, mut tot_without) = (0usize, 0usize);
        for (i, &fl) in flag.iter().enumerate() {
            let bad = ds.labels[i].0 == 0;
            if fl == 1 {
                tot_with += 1;
                bad_with += usize::from(bad);
            } else {
                tot_without += 1;
                bad_without += usize::from(bad);
            }
        }
        assert!(bad_with as f64 / tot_with as f64 > bad_without as f64 / tot_without as f64 + 0.15);
    }
}
