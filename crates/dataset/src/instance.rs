//! Encoded instances and labels.
//!
//! After discretization every feature value is a small categorical code
//! ([`Cat`]); an [`Instance`] is a dense row of codes. This keeps the hot
//! loops of the key-finding algorithms branch-light and allocation-free:
//! agreement between two instances on a feature subset is a handful of
//! integer compares.

use std::fmt;

/// An encoded categorical value: an index into the feature's value
/// dictionary (see [`crate::FeatureDef`]).
pub type Cat = u32;

/// A class label produced by a model or recorded in a dataset.
///
/// Labels are opaque small integers; datasets carry the display names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A dense, encoded row: one categorical code per feature.
///
/// Instances are cheap to clone (a single boxed slice) and compare.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Instance {
    values: Box<[Cat]>,
}

impl Instance {
    /// Creates an instance from encoded values.
    pub fn new(values: Vec<Cat>) -> Self {
        Self {
            values: values.into_boxed_slice(),
        }
    }

    /// Number of features.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the instance has no features.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The encoded value of feature `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn get(&self, i: usize) -> Cat {
        self.values[i]
    }

    /// All encoded values.
    #[inline]
    pub fn values(&self) -> &[Cat] {
        &self.values
    }

    /// Returns a copy with feature `i` replaced by `v`.
    ///
    /// Used by perturbation-based explainers (LIME/SHAP/Anchor/CERTA) and the
    /// faithfulness metric, which mask or resample individual features.
    pub fn with(&self, i: usize, v: Cat) -> Self {
        let mut values = self.values.clone();
        values[i] = v;
        Self { values }
    }

    /// True when `self` and `other` agree on every feature in `feats`.
    ///
    /// This is the projection equality `x[E] = x'[E]` from the paper's
    /// rule-based explanation semantics.
    #[inline]
    pub fn agrees_on(&self, other: &Instance, feats: &[usize]) -> bool {
        feats.iter().all(|&f| self.values[f] == other.values[f])
    }

    /// Features on which `self` and `other` differ.
    ///
    /// This is the set `Sₜ` of Algorithms 2 and 3.
    pub fn differing_features(&self, other: &Instance) -> Vec<usize> {
        debug_assert_eq!(self.len(), other.len());
        (0..self.len())
            .filter(|&f| self.values[f] != other.values[f])
            .collect()
    }
}

impl std::ops::Index<usize> for Instance {
    type Output = Cat;

    #[inline]
    fn index(&self, i: usize) -> &Cat {
        &self.values[i]
    }
}

impl From<Vec<Cat>> for Instance {
    fn from(values: Vec<Cat>) -> Self {
        Self::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreement_on_subset() {
        let a = Instance::new(vec![1, 2, 3, 4]);
        let b = Instance::new(vec![1, 9, 3, 8]);
        assert!(a.agrees_on(&b, &[0, 2]));
        assert!(!a.agrees_on(&b, &[0, 1]));
        assert!(a.agrees_on(&b, &[]), "empty projection always agrees");
    }

    #[test]
    fn differing_features_lists_mismatches() {
        let a = Instance::new(vec![1, 2, 3, 4]);
        let b = Instance::new(vec![1, 9, 3, 8]);
        assert_eq!(a.differing_features(&b), vec![1, 3]);
        assert!(a.differing_features(&a).is_empty());
    }

    #[test]
    fn with_replaces_single_value() {
        let a = Instance::new(vec![1, 2, 3]);
        let b = a.with(1, 7);
        assert_eq!(b.values(), &[1, 7, 3]);
        assert_eq!(a.values(), &[1, 2, 3], "original untouched");
    }

    #[test]
    fn index_and_len() {
        let a = Instance::new(vec![5, 6]);
        assert_eq!(a[0], 5);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert!(Instance::new(vec![]).is_empty());
    }
}
