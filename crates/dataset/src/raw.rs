//! Raw (pre-discretization) datasets.
//!
//! Synthetic generators emit [`RawDataset`]s whose numeric columns carry
//! real values; [`RawDataset::encode`] discretizes them under a
//! [`BinSpec`] into a dense [`Dataset`]. Keeping the raw values around is
//! what lets the `#-bucket` experiments re-encode the same data under
//! different bucket counts.

use crate::binning::{BinSpec, Binning};
use crate::dataset::Dataset;
use crate::instance::{Cat, Instance, Label};
use crate::schema::{FeatureDef, Schema};

/// A raw column: either real-valued or already categorical.
#[derive(Debug, Clone, PartialEq)]
pub enum RawColumn {
    /// Real-valued observations.
    Numeric(Vec<f64>),
    /// Encoded categorical observations plus their display names.
    Categorical {
        /// Encoded value per row.
        codes: Vec<Cat>,
        /// Display names indexed by code.
        names: Vec<String>,
    },
}

impl RawColumn {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            RawColumn::Numeric(v) => v.len(),
            RawColumn::Categorical { codes, .. } => codes.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A raw dataset: named typed columns, labels, and label display names.
#[derive(Debug, Clone)]
pub struct RawDataset {
    /// Dataset name (e.g. `"Loan"`).
    pub name: String,
    /// Named columns, in feature order.
    pub columns: Vec<(String, RawColumn)>,
    /// One label per row.
    pub labels: Vec<Label>,
    /// Display names indexed by label code (e.g. `["Denied", "Approved"]`).
    pub label_names: Vec<String>,
}

impl RawDataset {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.columns.len()
    }

    /// Fraction of rows labeled `Label(1)` — a quick class-balance check
    /// for binary datasets.
    pub fn positive_rate(&self) -> f64 {
        let pos = self.labels.iter().filter(|l| **l == Label(1)).count();
        pos as f64 / self.labels.len().max(1) as f64
    }

    /// Discretizes numeric columns under `spec` and packs rows into a dense
    /// [`Dataset`].
    ///
    /// # Panics
    /// Panics if column lengths disagree with the label count (generator
    /// bug).
    pub fn encode(&self, spec: &BinSpec) -> Dataset {
        cce_obs::counter!("cce_dataset_encodes_total").inc();
        cce_obs::histogram!("cce_dataset_encode_rows").record(self.len() as u64);
        let n = self.len();
        let mut feats = Vec::with_capacity(self.columns.len());
        let mut encoded: Vec<Vec<Cat>> = Vec::with_capacity(self.columns.len());
        for (name, col) in &self.columns {
            assert_eq!(col.len(), n, "column {name} length mismatch");
            match col {
                RawColumn::Numeric(vals) => {
                    let binning = Binning::fit(vals, spec.buckets_for(name), spec.strategy());
                    encoded.push(vals.iter().map(|&v| binning.bucket_of(v)).collect());
                    feats.push(FeatureDef::numeric(name, binning));
                }
                RawColumn::Categorical { codes, names } => {
                    encoded.push(codes.clone());
                    feats.push(FeatureDef {
                        name: name.clone(),
                        kind: crate::schema::FeatureKind::Categorical {
                            names: names.clone(),
                        },
                    });
                }
            }
        }
        let schema = Schema::new(feats);
        let instances = (0..n)
            .map(|row| Instance::new(encoded.iter().map(|col| col[row]).collect()))
            .collect();
        Dataset::new(self.name.clone(), schema, instances, self.labels.clone())
            .with_label_names(self.label_names.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_raw() -> RawDataset {
        RawDataset {
            name: "toy".into(),
            columns: vec![
                (
                    "income".into(),
                    RawColumn::Numeric(vec![10.0, 20.0, 30.0, 40.0]),
                ),
                (
                    "credit".into(),
                    RawColumn::Categorical {
                        codes: vec![0, 1, 0, 1],
                        names: vec!["good".into(), "poor".into()],
                    },
                ),
            ],
            labels: vec![Label(1), Label(0), Label(1), Label(0)],
            label_names: vec!["Denied".into(), "Approved".into()],
        }
    }

    #[test]
    fn encode_produces_dense_rows() {
        let raw = sample_raw();
        let ds = raw.encode(&BinSpec::uniform(2));
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.schema().n_features(), 2);
        // income buckets: [10,25) -> 0, [25,40] -> 1
        assert_eq!(ds.instance(0)[0], 0);
        assert_eq!(ds.instance(3)[0], 1);
        // categorical passes through
        assert_eq!(ds.instance(1)[1], 1);
        assert_eq!(ds.label(1), Label(0));
    }

    #[test]
    fn rebinning_changes_cardinality() {
        let raw = sample_raw();
        let coarse = raw.encode(&BinSpec::uniform(2));
        let fine = raw.encode(&BinSpec::uniform(4));
        assert_eq!(coarse.schema().feature(0).cardinality(), 2);
        assert_eq!(fine.schema().feature(0).cardinality(), 4);
        // Categorical column is unaffected by the spec.
        assert_eq!(fine.schema().feature(1).cardinality(), 2);
    }
}
