//! Criterion bench: per-instance explanation latency of every method on
//! Loan — the Criterion twin of Table 4. Expected ordering:
//! CCE ≪ GAM/LIME < SHAP < Anchor ≪ Xreason.

use cce_baselines::gam::GamParams;
use cce_baselines::{Anchor, AnchorParams, Gam, KernelShap, Lime, LimeParams, ShapParams, Xreason};
use cce_bench::{prepare, ExpConfig};
use cce_core::{Alpha, Srk};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_baselines(c: &mut Criterion) {
    let cfg = ExpConfig {
        scale: 1.0,
        targets: 1,
        seed: 42,
        buckets: 10,
    };
    let prep = prepare("Loan", &cfg);
    let mut group = c.benchmark_group("explain_one_loan_instance");
    group.sample_size(20);

    let srk = Srk::new(Alpha::ONE);
    group.bench_function("cce_srk", |b| {
        let mut t = 0usize;
        b.iter(|| {
            t = (t + 7) % prep.ctx.len();
            std::hint::black_box(srk.explain(&prep.ctx, t)).ok()
        });
    });

    let lime = Lime::new(&prep.train, LimeParams::default());
    group.bench_function("lime", |b| {
        let mut t = 0usize;
        b.iter(|| {
            t = (t + 7) % prep.infer.len();
            std::hint::black_box(lime.importance(&prep.model, prep.infer.instance(t)))
        });
    });

    let shap = KernelShap::new(&prep.train, ShapParams::default());
    group.bench_function("shap", |b| {
        let mut t = 0usize;
        b.iter(|| {
            t = (t + 7) % prep.infer.len();
            std::hint::black_box(shap.importance(&prep.model, prep.infer.instance(t)))
        });
    });

    let anchor = Anchor::new(&prep.train, AnchorParams::default());
    group.bench_function("anchor", |b| {
        let mut t = 0usize;
        b.iter(|| {
            t = (t + 7) % prep.infer.len();
            std::hint::black_box(anchor.explain(&prep.model, prep.infer.instance(t)))
        });
    });

    group.bench_function("gam_fit_and_explain", |b| {
        let mut t = 0usize;
        b.iter(|| {
            t = (t + 7) % prep.infer.len();
            let gam = Gam::fit(&prep.model, &prep.train, GamParams::default());
            std::hint::black_box(gam.importance(&prep.model, prep.infer.instance(t)))
        });
    });

    let xr = Xreason::new(&prep.model, prep.infer.schema());
    group.bench_function("xreason", |b| {
        let mut t = 0usize;
        b.iter(|| {
            t = (t + 7) % prep.infer.len();
            std::hint::black_box(xr.explain(prep.infer.instance(t)))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
