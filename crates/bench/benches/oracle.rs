//! Criterion bench: the exact feature-space sufficiency oracle that
//! powers Xreason — cost vs ensemble size (the NP-hard part of formal
//! explanation).

use cce_baselines::EnsembleOracle;
use cce_bench::ExpConfig;
use cce_core::Context;
use cce_dataset::synth;
use cce_dataset::{BinSpec, BinningStrategy};
use cce_model::{Gbdt, GbdtParams, TreeParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_oracle(c: &mut Criterion) {
    let cfg = ExpConfig {
        scale: 0.3,
        targets: 1,
        seed: 42,
        buckets: 10,
    };
    let raw = synth::general_dataset("Loan", cfg.scale, cfg.seed).unwrap();
    let spec = BinSpec::uniform(10).with_strategy(BinningStrategy::Quantile);
    let ds = raw.encode(&spec);
    let (train, infer) = ds.split(0.7, &mut StdRng::seed_from_u64(1));

    let mut group = c.benchmark_group("sufficiency_oracle");
    for n_trees in [5usize, 15, 25] {
        let model = Gbdt::train(
            &train,
            &GbdtParams {
                n_trees,
                learning_rate: 0.3,
                tree: TreeParams {
                    max_depth: 4,
                    ..Default::default()
                },
            },
            0,
        );
        let _ = Context::from_model(&infer, &model);
        let oracle = EnsembleOracle::new(&model, infer.schema());
        // A midsized fixed feature subset: hard-ish queries.
        let feats: Vec<usize> = (0..infer.schema().n_features()).step_by(3).collect();
        group.bench_function(BenchmarkId::new("is_sufficient", n_trees), |b| {
            let mut t = 0usize;
            b.iter(|| {
                t = (t + 13) % infer.len();
                std::hint::black_box(oracle.is_sufficient(infer.instance(t), &feats))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_oracle);
criterion_main!(benches);
