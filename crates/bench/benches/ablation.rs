//! Criterion benches for the design-choice ablations called out in
//! DESIGN.md:
//!
//! 1. SRK's incremental violator maintenance vs the literal
//!    re-scan-per-iteration reading of Algorithm 1,
//! 2. the log-domain SSRK potential vs the naive `m^{2μ}` form (which
//!    overflows and, where finite, costs `powf` per term),
//! 3. OSRK's arbitrary-pick rules (First / MaxWeight / MaxKill).

use cce_bench::{prepare, ExpConfig};
use cce_core::{Alpha, OsrkMonitor, PickRule, Srk, SsrkMonitor};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

fn bench_srk_incremental_vs_naive(c: &mut Criterion) {
    let cfg = ExpConfig {
        scale: 0.2,
        targets: 1,
        seed: 42,
        buckets: 10,
    };
    let prep = prepare("Adult", &cfg);
    let srk = Srk::new(Alpha::ONE);
    let mut group = c.benchmark_group("ablation_srk");
    group.bench_function("incremental", |b| {
        let mut t = 0usize;
        b.iter(|| {
            t = (t + 17) % prep.ctx.len();
            std::hint::black_box(srk.explain(&prep.ctx, t)).ok()
        });
    });
    group.bench_function("naive_rescan", |b| {
        let mut t = 0usize;
        b.iter(|| {
            t = (t + 17) % prep.ctx.len();
            std::hint::black_box(srk.explain_naive(&prep.ctx, t)).ok()
        });
    });
    group.finish();
}

fn bench_potential_forms(c: &mut Criterion) {
    let cfg = ExpConfig {
        scale: 0.2,
        targets: 1,
        seed: 42,
        buckets: 10,
    };
    let prep = prepare("Adult", &cfg);
    let universe: Vec<_> = prep
        .ctx
        .instances()
        .iter()
        .cloned()
        .zip(prep.ctx.predictions().iter().copied())
        .collect();
    let monitor = SsrkMonitor::new(
        prep.ctx.instance(0).clone(),
        prep.ctx.prediction(0),
        Alpha::ONE,
        &universe,
    );
    let mut group = c.benchmark_group("ablation_potential");
    group.bench_function("log_domain", |b| {
        b.iter(|| std::hint::black_box(monitor.recompute_log_potential()));
    });
    group.bench_function("naive_powf", |b| {
        // Overflows to +inf on large universes — kept to quantify the cost
        // and demonstrate the failure mode the log-domain form avoids.
        b.iter(|| std::hint::black_box(monitor.naive_potential()));
    });
    group.finish();
}

fn bench_pick_rules(c: &mut Criterion) {
    let cfg = ExpConfig {
        scale: 0.1,
        targets: 1,
        seed: 42,
        buckets: 10,
    };
    let prep = prepare("Compas", &cfg);
    let stream: Vec<_> = prep
        .ctx
        .instances()
        .iter()
        .cloned()
        .zip(prep.ctx.predictions().iter().copied())
        .skip(1)
        .collect();
    let x0 = prep.ctx.instance(0).clone();
    let p0 = prep.ctx.prediction(0);
    let mut group = c.benchmark_group("ablation_pick_rule");
    for rule in [PickRule::First, PickRule::MaxWeight, PickRule::MaxKill] {
        group.bench_function(BenchmarkId::new("osrk_stream", format!("{rule:?}")), |b| {
            b.iter_batched(
                || OsrkMonitor::new(x0.clone(), p0, Alpha::ONE, 7).with_pick_rule(rule),
                |mut m| {
                    for (x, p) in &stream {
                        let _ = m.observe(x.clone(), *p);
                    }
                    m.succinctness()
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_context_index(c: &mut Criterion) {
    use cce_core::ContextIndex;
    let cfg = ExpConfig {
        scale: 0.3,
        targets: 1,
        seed: 42,
        buckets: 10,
    };
    let prep = prepare("Adult", &cfg);
    let srk = Srk::new(Alpha::ONE);
    let idx = ContextIndex::new(&prep.ctx);
    let mut group = c.benchmark_group("ablation_index");
    group.bench_function("srk_plain", |b| {
        let mut t = 0usize;
        b.iter(|| {
            t = (t + 17) % prep.ctx.len();
            std::hint::black_box(srk.explain(&prep.ctx, t)).ok()
        });
    });
    group.bench_function("srk_indexed", |b| {
        let mut t = 0usize;
        b.iter(|| {
            t = (t + 17) % prep.ctx.len();
            std::hint::black_box(idx.explain(&prep.ctx, t, Alpha::ONE)).ok()
        });
    });
    group.bench_function("index_build", |b| {
        b.iter(|| std::hint::black_box(ContextIndex::new(&prep.ctx)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_srk_incremental_vs_naive,
    bench_potential_forms,
    bench_pick_rules,
    bench_context_index
);
criterion_main!(benches);
