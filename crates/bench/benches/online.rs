//! Criterion bench: per-arrival update cost of the online monitors
//! (§7.4 reports 0.02 ms for OSRK and 0.03 ms for SSRK per instance).

use cce_bench::{prepare, ExpConfig};
use cce_core::{Alpha, OsrkMonitor, SsrkMonitor};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

fn bench_online(c: &mut Criterion) {
    let cfg = ExpConfig {
        scale: 0.2,
        targets: 1,
        seed: 42,
        buckets: 10,
    };
    let prep = prepare("Adult", &cfg);
    let universe: Vec<_> = prep
        .ctx
        .instances()
        .iter()
        .cloned()
        .zip(prep.ctx.predictions().iter().copied())
        .collect();
    let x0 = prep.ctx.instance(0).clone();
    let p0 = prep.ctx.prediction(0);
    let stream: Vec<_> = universe[1..].to_vec();

    let mut group = c.benchmark_group("online");
    group.throughput(Throughput::Elements(stream.len() as u64));

    group.bench_function("osrk_full_stream", |b| {
        b.iter_batched(
            || OsrkMonitor::new(x0.clone(), p0, Alpha::ONE, 7),
            |mut m| {
                for (x, p) in &stream {
                    let _ = m.observe(x.clone(), *p);
                }
                m.succinctness()
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("ssrk_full_stream", |b| {
        b.iter_batched(
            || SsrkMonitor::new(x0.clone(), p0, Alpha::ONE, &universe),
            |mut m| {
                for (x, p) in &stream {
                    let _ = m.observe(x.clone(), *p);
                }
                m.succinctness()
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("ssrk_offline_init", |b| {
        b.iter(|| SsrkMonitor::new(x0.clone(), p0, Alpha::ONE, std::hint::black_box(&universe)));
    });
    group.finish();
}

criterion_group!(benches, bench_online);
criterion_main!(benches);
