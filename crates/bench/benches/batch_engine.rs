//! Criterion bench: the batch explanation engine, layer by layer.
//!
//! Compares, on one shared `explain_all` workload:
//!
//! * `eager_seq` — the pre-engine baseline (full rescan per round, fresh
//!   allocations per target),
//! * `lazy_seq` — CELF lazy-greedy selection + fused popcounts + scratch
//!   reuse, still sequential,
//! * `engine_parallel` — the full engine: lazy greedy + duplicate-row
//!   memoization + work-stealing scheduler.

use cce_core::{Alpha, Cce, CceConfig, Context, ContextIndex, ExplainScratch};
use cce_dataset::{synth, BinSpec};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_batch_engine(c: &mut Criterion) {
    // Same workload family as `exp_bench_batch --quick`: a generated
    // Loan context large enough that bitset passes, not fixed per-call
    // overheads, dominate.
    let raw = synth::loan::generate(2_000, 42);
    let ctx = Context::from_recorded(&raw.encode(&BinSpec::uniform(10)));
    let ctx = &ctx;
    let n = ctx.len();
    let alpha = Alpha::ONE;
    let idx = ContextIndex::new(ctx);
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);

    let mut group = c.benchmark_group("batch_engine");
    group.bench_function(format!("eager_seq/{n}"), |b| {
        b.iter(|| {
            let mut keys = 0usize;
            for t in 0..n {
                keys += usize::from(idx.explain_eager(ctx, t, alpha).is_ok());
            }
            std::hint::black_box(keys)
        });
    });
    group.bench_function(format!("lazy_seq/{n}"), |b| {
        let mut scratch = ExplainScratch::new();
        b.iter(|| {
            let mut keys = 0usize;
            for t in 0..n {
                keys += usize::from(idx.explain_with(ctx, t, alpha, &mut scratch).is_ok());
            }
            std::hint::black_box(keys)
        });
    });
    let cce = Cce::with_context(ctx.clone(), CceConfig::default());
    group.bench_function(format!("engine_parallel/{n}x{threads}"), |b| {
        b.iter(|| std::hint::black_box(cce.explain_all_parallel(threads).len()));
    });
    group.finish();
}

criterion_group!(benches, bench_batch_engine);
criterion_main!(benches);
