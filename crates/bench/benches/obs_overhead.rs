//! Proves the observability layer is cheap: instrumented `explain_all`
//! must stay within a few percent of the disabled-instrumentation
//! baseline (the ISSUE's ~5% budget).
//!
//! Run with `cargo bench --bench obs_overhead`; the final line prints the
//! enabled/disabled mean-latency ratio.

use cce_bench::setup::{prepare, ExpConfig};
use cce_core::{Cce, CceConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn obs_overhead(c: &mut Criterion) {
    let prep = prepare("Loan", &ExpConfig::from_env());
    let cce = Cce::with_context(prep.ctx, CceConfig::default());

    let mut group = c.benchmark_group("obs_overhead");
    cce_obs::set_enabled(false);
    group.bench_function("explain_all/disabled", |b| {
        b.iter(|| black_box(cce.explain_all()))
    });
    cce_obs::set_enabled(true);
    group.bench_function("explain_all/enabled", |b| {
        b.iter(|| black_box(cce.explain_all()))
    });
    group.finish();

    let stat = |needle: &str, pick: fn(f64, f64) -> f64| {
        c.samples()
            .iter()
            .find(|(name, _)| name.contains(needle))
            .map(|(_, s)| pick(s.mean_ns, s.min_ns))
            .unwrap_or(f64::NAN)
    };
    let mean_ratio = stat("enabled", |m, _| m) / stat("disabled", |m, _| m);
    // The min is the robust estimate: means absorb scheduler noise that
    // easily exceeds the instrumentation cost itself.
    let min_ratio = stat("enabled", |_, m| m) / stat("disabled", |_, m| m);
    println!(
        "obs overhead: enabled/disabled ratio = {min_ratio:.4} (min), \
         {mean_ratio:.4} (mean) — budget ~1.05"
    );
}

criterion_group!(benches, obs_overhead);
criterion_main!(benches);
