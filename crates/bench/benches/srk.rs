//! Criterion bench: batch relative-key computation (SRK) across context
//! sizes and conformity bounds — the cost model behind Table 4's CCE row
//! and Fig. 3g.

use cce_bench::{prepare, ExpConfig};
use cce_core::{Alpha, Srk};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_srk(c: &mut Criterion) {
    let mut group = c.benchmark_group("srk");
    for (scale, label) in [(0.05, "small"), (0.2, "medium"), (0.6, "large")] {
        let cfg = ExpConfig {
            scale,
            targets: 1,
            seed: 42,
            buckets: 10,
        };
        let prep = prepare("Adult", &cfg);
        let srk = Srk::new(Alpha::ONE);
        group.bench_function(
            BenchmarkId::new("adult_alpha1", format!("{label}_{}", prep.ctx.len())),
            |b| {
                let mut t = 0usize;
                b.iter(|| {
                    t = (t + 17) % prep.ctx.len();
                    std::hint::black_box(srk.explain(&prep.ctx, t)).ok()
                });
            },
        );
    }

    // α sweep at fixed size (Fig. 3g's shape: relaxing α speeds SRK up).
    let cfg = ExpConfig {
        scale: 0.3,
        targets: 1,
        seed: 42,
        buckets: 10,
    };
    let prep = prepare("Loan", &cfg);
    for a in [1.0, 0.95, 0.9] {
        let srk = Srk::new(Alpha::new(a).unwrap());
        group.bench_function(BenchmarkId::new("loan_alpha", format!("{a}")), |b| {
            let mut t = 0usize;
            b.iter(|| {
                t = (t + 7) % prep.ctx.len();
                std::hint::black_box(srk.explain(&prep.ctx, t)).ok()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_srk);
criterion_main!(benches);
