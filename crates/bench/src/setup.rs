//! Dataset/model preparation shared by all experiments.

use cce_core::Context;
use cce_dataset::synth::{self, em::EmDataset};
use cce_dataset::{BinSpec, BinningStrategy, Dataset};
use cce_model::{Gbdt, GbdtParams, Matcher, MlpParams, Model};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Global experiment configuration, read once from the environment.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Multiplier on the paper's dataset sizes.
    pub scale: f64,
    /// Instances explained per dataset (the paper samples 100).
    pub targets: usize,
    /// Global seed.
    pub seed: u64,
    /// Default `#-bucket` for numeric features.
    pub buckets: usize,
}

impl ExpConfig {
    /// Reads `CCE_SCALE`, `CCE_TARGETS` and `CCE_SEED` with defaults
    /// suitable for minutes-scale runs.
    pub fn from_env() -> Self {
        let scale = std::env::var("CCE_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.2);
        let targets = std::env::var("CCE_TARGETS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(30);
        let seed = std::env::var("CCE_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(42);
        Self {
            scale,
            targets,
            seed,
            buckets: 10,
        }
    }

    /// A small configuration for unit tests of the harness itself.
    pub fn tiny() -> Self {
        Self {
            scale: 0.05,
            targets: 6,
            seed: 7,
            buckets: 8,
        }
    }
}

/// A prepared general-ML experiment: data, model, inference context.
pub struct Prepared {
    /// Dataset name (Table 1).
    pub name: String,
    /// Training split (70%).
    pub train: Dataset,
    /// Inference split (30%) — the client's context source.
    pub infer: Dataset,
    /// The served model (XGBoost stand-in).
    pub model: Gbdt,
    /// The inference context: instances + recorded predictions.
    pub ctx: Context,
}

/// Prepares a general dataset under the default binning (quantile cut
/// points: balanced buckets avoid trivially-rare codes that would make
/// keys degenerate).
pub fn prepare(name: &str, cfg: &ExpConfig) -> Prepared {
    let spec = BinSpec::uniform(cfg.buckets).with_strategy(BinningStrategy::Quantile);
    prepare_with_spec(name, cfg, &spec)
}

/// Prepares a general dataset under an explicit [`BinSpec`] (the
/// `#-bucket` experiments re-encode with overrides).
pub fn prepare_with_spec(name: &str, cfg: &ExpConfig, spec: &BinSpec) -> Prepared {
    let raw = synth::general_dataset(name, cfg.scale, cfg.seed)
        .unwrap_or_else(|| panic!("unknown dataset {name}"));
    let ds = raw.encode(spec);
    let (train, infer) = ds.split(0.7, &mut StdRng::seed_from_u64(cfg.seed ^ 0x5114));
    let model = Gbdt::train(&train, &GbdtParams::explainable(), cfg.seed);
    let ctx = Context::from_model(&infer, &model);
    Prepared {
        name: name.to_string(),
        train,
        infer,
        model,
        ctx,
    }
}

/// A prepared entity-matching experiment.
pub struct PreparedEm {
    /// Dataset name (`A-G`, `D-A`, `D-G`, `W-A`).
    pub name: String,
    /// The raw record pairs (needed by CERTA's attribute swaps).
    pub em: EmDataset,
    /// All pairs, encoded; row `i` corresponds to `em.pairs[i]`.
    pub all: Dataset,
    /// Row indices of the training pairs.
    pub train_rows: Vec<usize>,
    /// Row indices of the inference pairs.
    pub infer_rows: Vec<usize>,
    /// The Ditto stand-in matcher.
    pub matcher: Matcher,
    /// Inference context over the inference pairs.
    pub ctx: Context,
}

/// Prepares an EM dataset: split pairs, train the matcher, build the
/// context.
pub fn prepare_em(name: &str, cfg: &ExpConfig) -> PreparedEm {
    let em = synth::em_dataset(name, cfg.scale, cfg.seed)
        .unwrap_or_else(|| panic!("unknown EM dataset {name}"));
    let all = em.to_raw().encode(&BinSpec::uniform(8));
    let mut rows: Vec<usize> = (0..all.len()).collect();
    rows.shuffle(&mut StdRng::seed_from_u64(cfg.seed ^ 0xe111));
    let cut = (rows.len() as f64 * 0.7) as usize;
    let (train_rows, infer_rows) = (rows[..cut].to_vec(), rows[cut..].to_vec());
    let train = all.select(&train_rows);
    let matcher = Matcher::train(&train, &MlpParams::default(), cfg.seed);
    let infer = all.select(&infer_rows);
    let ctx = Context::from_model(&infer, &matcher);
    PreparedEm {
        name: name.to_string(),
        em,
        all,
        train_rows,
        infer_rows,
        matcher,
        ctx,
    }
}

/// Deterministically samples `count` target rows out of `len`.
pub fn sample_targets(len: usize, count: usize, seed: u64) -> Vec<usize> {
    let mut rows: Vec<usize> = (0..len).collect();
    rows.shuffle(&mut StdRng::seed_from_u64(seed ^ 0x7a26));
    rows.truncate(count.min(len));
    rows
}

/// Milliseconds elapsed running `f` once.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Accuracy of the prepared model on its inference split.
pub fn infer_accuracy(prep: &Prepared) -> f64 {
    cce_model::eval::accuracy(&prep.model, &prep.infer)
}

/// Sanity check used by tests: the context predictions really are the
/// model's.
pub fn context_is_recorded(prep: &Prepared) -> bool {
    prep.ctx
        .instances()
        .iter()
        .zip(prep.ctx.predictions())
        .all(|(x, &p)| prep.model.predict(x) == p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_builds_consistent_context() {
        let cfg = ExpConfig::tiny();
        let prep = prepare("Loan", &cfg);
        assert_eq!(prep.ctx.len(), prep.infer.len());
        assert!(context_is_recorded(&prep));
        assert!(infer_accuracy(&prep) > 0.7);
    }

    #[test]
    fn prepare_em_keeps_pair_alignment() {
        let cfg = ExpConfig::tiny();
        let prep = prepare_em("A-G", &cfg);
        assert_eq!(prep.all.len(), prep.em.pairs.len());
        assert_eq!(
            prep.train_rows.len() + prep.infer_rows.len(),
            prep.all.len()
        );
        // Row i of `all` is pair i: spot-check similarity encoding.
        let i = prep.infer_rows[0];
        let sims = prep.em.similarities(&prep.em.pairs[i]);
        assert_eq!(sims.len(), prep.all.schema().n_features());
    }

    #[test]
    fn sample_targets_is_deterministic_and_bounded() {
        let a = sample_targets(100, 10, 1);
        let b = sample_targets(100, 10, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert!(sample_targets(5, 10, 1).len() == 5);
    }

    #[test]
    fn env_defaults() {
        let cfg = ExpConfig::from_env();
        assert!(cfg.scale > 0.0);
        assert!(cfg.targets > 0);
    }
}
