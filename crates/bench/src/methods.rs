//! Unified method runners: each produces size-matched feature
//! explanations plus average per-instance wall-clock, following the
//! protocol of §7.1 and §7.3.

use cce_baselines::gam::GamParams;
use cce_baselines::{
    top_k_features, Anchor, AnchorParams, Gam, KernelShap, Lime, LimeParams, ShapParams, Xreason,
};
use cce_core::{Alpha, Srk};
use cce_metrics::Explained;

use crate::setup::Prepared;

/// Output of one method over a target panel.
pub struct MethodRun {
    /// Display name.
    pub name: &'static str,
    /// Explanations, aligned with the targets that succeeded.
    pub explained: Vec<Explained>,
    /// Average milliseconds per explained instance.
    pub avg_ms: f64,
}

/// Runs CCE (SRK) over the targets; also returns the per-target key sizes
/// used to size-match the other methods (`max(1, |key|)`).
pub fn run_cce(prep: &Prepared, targets: &[usize], alpha: Alpha) -> (MethodRun, Vec<usize>) {
    let srk = Srk::new(alpha);
    let mut explained = Vec::with_capacity(targets.len());
    let mut sizes = Vec::with_capacity(targets.len());
    let start = std::time::Instant::now();
    for &t in targets {
        match srk.explain(&prep.ctx, t) {
            Ok(key) => {
                sizes.push(key.succinctness().max(1));
                explained.push(Explained::new(t, key.features().to_vec()));
            }
            Err(_) => sizes.push(1), // contradiction: skip but keep sizing
        }
    }
    let avg_ms = start.elapsed().as_secs_f64() * 1e3 / targets.len().max(1) as f64;
    (
        MethodRun {
            name: "CCE",
            explained,
            avg_ms,
        },
        sizes,
    )
}

/// LIME with explanations derived at the matched sizes.
pub fn run_lime(prep: &Prepared, targets: &[usize], sizes: &[usize], seed: u64) -> MethodRun {
    let lime = Lime::new(
        &prep.train,
        LimeParams {
            seed,
            ..Default::default()
        },
    );
    run_importance("LIME", prep, targets, sizes, |x| {
        lime.importance(&prep.model, x)
    })
}

/// KernelSHAP with explanations derived at the matched sizes.
pub fn run_shap(prep: &Prepared, targets: &[usize], sizes: &[usize], seed: u64) -> MethodRun {
    let shap = KernelShap::new(
        &prep.train,
        ShapParams {
            seed,
            ..Default::default()
        },
    );
    run_importance("SHAP", prep, targets, sizes, |x| {
        shap.importance(&prep.model, x)
    })
}

/// GAM with explanations derived at the matched sizes. The surrogate is
/// refit per explanation, mirroring the per-instance cost profile the
/// paper reports for GAM.
pub fn run_gam(prep: &Prepared, targets: &[usize], sizes: &[usize]) -> MethodRun {
    run_importance("GAM", prep, targets, sizes, |x| {
        let gam = Gam::fit(&prep.model, &prep.train, GamParams::default());
        gam.importance(&prep.model, x)
    })
}

/// Anchor with rules beam-searched to the matched sizes.
pub fn run_anchor(prep: &Prepared, targets: &[usize], sizes: &[usize], seed: u64) -> MethodRun {
    let anchor = Anchor::new(
        &prep.train,
        AnchorParams {
            seed,
            ..Default::default()
        },
    );
    let mut explained = Vec::with_capacity(targets.len());
    let start = std::time::Instant::now();
    for (&t, &k) in targets.iter().zip(sizes) {
        let feats = anchor.explain_with_size(&prep.model, prep.infer.instance(t), k);
        explained.push(Explained::new(t, feats));
    }
    let avg_ms = start.elapsed().as_secs_f64() * 1e3 / targets.len().max(1) as f64;
    MethodRun {
        name: "Anchor",
        explained,
        avg_ms,
    }
}

/// Anchor in its native threshold mode (used by the case study and the
/// timing table, where sizes are not matched).
pub fn run_anchor_native(prep: &Prepared, targets: &[usize], seed: u64) -> MethodRun {
    let anchor = Anchor::new(
        &prep.train,
        AnchorParams {
            seed,
            ..Default::default()
        },
    );
    let mut explained = Vec::with_capacity(targets.len());
    let start = std::time::Instant::now();
    for &t in targets {
        let feats = anchor.explain(&prep.model, prep.infer.instance(t));
        explained.push(Explained::new(t, feats));
    }
    let avg_ms = start.elapsed().as_secs_f64() * 1e3 / targets.len().max(1) as f64;
    MethodRun {
        name: "Anchor",
        explained,
        avg_ms,
    }
}

/// Xreason: formal sufficient reasons at their natural size.
pub fn run_xreason(prep: &Prepared, targets: &[usize]) -> MethodRun {
    let xr = Xreason::new(&prep.model, prep.infer.schema());
    let mut explained = Vec::with_capacity(targets.len());
    let start = std::time::Instant::now();
    for &t in targets {
        let feats = xr.explain(prep.infer.instance(t));
        explained.push(Explained::new(t, feats));
    }
    let avg_ms = start.elapsed().as_secs_f64() * 1e3 / targets.len().max(1) as f64;
    MethodRun {
        name: "Xreason",
        explained,
        avg_ms,
    }
}

fn run_importance(
    name: &'static str,
    prep: &Prepared,
    targets: &[usize],
    sizes: &[usize],
    mut importance: impl FnMut(&cce_dataset::Instance) -> Vec<f64>,
) -> MethodRun {
    let mut explained = Vec::with_capacity(targets.len());
    let start = std::time::Instant::now();
    for (&t, &k) in targets.iter().zip(sizes) {
        let scores = importance(prep.infer.instance(t));
        explained.push(Explained::new(t, top_k_features(&scores, k)));
    }
    let avg_ms = start.elapsed().as_secs_f64() * 1e3 / targets.len().max(1) as f64;
    MethodRun {
        name,
        explained,
        avg_ms,
    }
}

/// Faithfulness items for a method run: `(instance, features)` pairs.
pub fn faithfulness_items(
    prep: &Prepared,
    run: &MethodRun,
) -> Vec<(cce_dataset::Instance, Vec<usize>)> {
    run.explained
        .iter()
        .map(|e| (prep.infer.instance(e.target).clone(), e.features.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{prepare, sample_targets, ExpConfig};

    #[test]
    fn end_to_end_method_runs() {
        let cfg = ExpConfig::tiny();
        let prep = prepare("Loan", &cfg);
        let targets = sample_targets(prep.ctx.len(), 4, cfg.seed);
        let (cce, sizes) = run_cce(&prep, &targets, Alpha::ONE);
        assert!(!cce.explained.is_empty());
        assert_eq!(sizes.len(), targets.len());

        let lime = run_lime(&prep, &targets, &sizes, cfg.seed);
        assert_eq!(lime.explained.len(), targets.len());
        for (e, &k) in lime.explained.iter().zip(&sizes) {
            assert_eq!(e.features.len(), k.min(prep.infer.schema().n_features()));
        }

        let anchor = run_anchor(&prep, &targets, &sizes, cfg.seed);
        for (e, &k) in anchor.explained.iter().zip(&sizes) {
            assert_eq!(e.features.len(), k);
        }
    }

    #[test]
    fn cce_is_fast_relative_to_anchor() {
        let cfg = ExpConfig::tiny();
        let prep = prepare("Loan", &cfg);
        let targets = sample_targets(prep.ctx.len(), 5, cfg.seed);
        let (cce, sizes) = run_cce(&prep, &targets, Alpha::ONE);
        let anchor = run_anchor(&prep, &targets, &sizes, cfg.seed);
        assert!(
            anchor.avg_ms > cce.avg_ms,
            "anchor {} ms should exceed cce {} ms",
            anchor.avg_ms,
            cce.avg_ms
        );
    }
}
