//! Regenerates the `tradeoff` experiment tables (see DESIGN.md §3).

fn main() {
    let cfg = cce_bench::ExpConfig::from_env();
    eprintln!("running experiment 'tradeoff' with {cfg:?}");
    let tables = cce_bench::experiments::tradeoff::run(&cfg);
    cce_bench::experiments::print_tables(&tables);
    cce_bench::dump_metrics("tradeoff");
}
