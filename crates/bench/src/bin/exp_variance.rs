//! Regenerates the `variance` experiment tables (see DESIGN.md §3).

fn main() {
    let cfg = cce_bench::ExpConfig::from_env();
    eprintln!("running experiment 'variance' with {cfg:?}");
    let tables = cce_bench::experiments::variance::run(&cfg);
    cce_bench::experiments::print_tables(&tables);
    cce_bench::dump_metrics("variance");
}
