//! `exp_bench_oocore` — measures out-of-core explain serving through the
//! paged context store and writes `BENCH_oocore.json`.
//!
//! The tentpole claim under test: a [`PagedContextIndex`] over the
//! on-disk page format, fronted by a byte-budgeted LRU page cache,
//! serves explains at a **bounded fraction of the in-RAM speed with a
//! fraction of the memory** — the acceptance bound is warm-cache
//! explains/sec ≥ 25% of the in-RAM [`ContextIndex`] on the 1M-row Loan
//! context while the cache budget is capped at 25% of the store's
//! bitset-column footprint. The bench itself enforces that bound in
//! full mode and exits non-zero below it.
//!
//! Reported entries:
//!
//! * **convert_secs / store_mb** — one-time CSV→store conversion cost
//!   and the resulting file size;
//! * **ram_explains_per_sec** — the in-RAM baseline over the same
//!   target sample;
//! * **cold_explains_per_sec** — first pass on a fresh open: every page
//!   faults through the `Vfs`;
//! * **warm_explains_per_sec** — second pass over the same targets with
//!   the cache populated up to its budget;
//! * **warm_vs_ram_ratio** — the acceptance ratio;
//! * **hit_rate / cache_budget_mb** — how the cache behaved under the
//!   25% cap.
//!
//! Every sampled explain is also checked against the in-RAM oracle —
//! a perf number from wrong bits would be meaningless.
//!
//! Flags / environment:
//!
//! * `--quick` or `CCE_BENCH_QUICK=1` — 200k rows instead of 1M (CI
//!   mode; the ratio gate only binds in full mode),
//! * `--out <path>` — output path (default `BENCH_oocore.json`),
//! * `--baseline <path>` — compare against a previous run and exit
//!   non-zero when `warm_explains_per_sec` or `warm_vs_ram_ratio`
//!   regresses by more than 20% — or when the baseline itself is
//!   malformed (missing keys, shape mismatch, zero/NaN fields): a
//!   silently-skipped gate passes every regression.

use std::time::Instant;

use cce_core::pagestore::write_store;
use cce_core::persist::StdVfs;
use cce_core::{Alpha, Context, ContextIndex, PagedContextIndex};
use cce_dataset::{synth, BinSpec};

struct OocoreResult {
    rows: usize,
    targets: usize,
    kernels: &'static str,
    convert_secs: f64,
    store_mb: f64,
    /// Cache budget actually used: 25% of the bitset-column footprint.
    cache_budget_mb: f64,
    ram_explains_per_sec: f64,
    cold_explains_per_sec: f64,
    warm_explains_per_sec: f64,
    /// warm / ram — the acceptance ratio.
    warm_vs_ram_ratio: f64,
    hit_rate: f64,
}

fn run(rows: usize, n_targets: usize, page_size: usize) -> OocoreResult {
    let raw = synth::loan::generate(rows, 42);
    let ds = raw.encode(&BinSpec::uniform(10));
    let ctx = Context::from_recorded(&ds);
    let alpha = Alpha::ONE;
    let store_path = std::env::temp_dir()
        .join("cce_bench_oocore.pg")
        .to_string_lossy()
        .into_owned();

    eprintln!("  converting {rows} rows to {store_path}…");
    let t0 = Instant::now();
    let summary =
        write_store(&mut StdVfs, &store_path, &ctx, page_size, ds.label_names()).expect("convert");
    let convert_secs = t0.elapsed().as_secs_f64();
    let store_mb = summary.bytes as f64 / (1024.0 * 1024.0);

    // Evenly spread targets so cold faults touch columns across the
    // whole store rather than one hot cluster.
    let targets: Vec<usize> = (0..n_targets).map(|i| i * rows / n_targets).collect();

    // --- in-RAM baseline ----------------------------------------------
    eprintln!("  building in-RAM index…");
    let index = ContextIndex::new(&ctx);
    let mut oracle = Vec::with_capacity(targets.len());
    let t0 = Instant::now();
    for &t in &targets {
        oracle.push(index.explain(&ctx, t, alpha));
    }
    let ram_explains_per_sec = targets.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);

    // --- out-of-core, cache capped at 25% of the in-RAM footprint ------
    // "Resident" is what the RAM baseline keeps in memory: the encoded
    // context rows plus every posting/class bitset. The out-of-core win
    // is that row data — the bulk at scale — never needs to be resident,
    // so a quarter of the RAM footprint holds the hot bitset columns
    // while total memory drops 4×.
    let probe = PagedContextIndex::open(StdVfs, &store_path, 0).expect("open store");
    let g = probe.store().geometry();
    let n_classes = probe.store().directory().classes.len();
    let n_features = probe.store().schema().n_features();
    // Per-row cost in the RAM baseline: every `Instance` is its own
    // `Vec<u32>` (24-byte header + payload, allocator slack excluded)
    // plus a 4-byte label; the index adds one bitset word-run per
    // posting/class column.
    let ram_resident_bytes =
        rows * (24 + 4 * n_features + 4) + (g.n_value_cols + n_classes) * g.words * 8;
    drop(probe);
    let cache_budget = ram_resident_bytes / 4;

    let mut paged = PagedContextIndex::open(StdVfs, &store_path, cache_budget).expect("open store");
    eprintln!(
        "  cold pass: {} targets, cache budget {:.1} MiB…",
        targets.len(),
        cache_budget as f64 / (1024.0 * 1024.0)
    );
    let t0 = Instant::now();
    for (i, &t) in targets.iter().enumerate() {
        let got = paged.explain_row(t, alpha);
        assert_eq!(got, oracle[i], "paged explain diverged at target {t}");
    }
    let cold_explains_per_sec = targets.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    let cs = paged.cache_stats();
    eprintln!(
        "    cold stats: {} hits, {} misses, {} evictions",
        cs.hits, cs.misses, cs.evictions
    );

    eprintln!("  warm pass…");
    let t0 = Instant::now();
    for (i, &t) in targets.iter().enumerate() {
        let got = paged.explain_row(t, alpha);
        assert_eq!(got, oracle[i], "warm paged explain diverged at target {t}");
    }
    let warm_explains_per_sec = targets.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    let stats = paged.cache_stats();
    eprintln!(
        "    warm stats: {} hits, {} misses, {} evictions",
        stats.hits - cs.hits,
        stats.misses - cs.misses,
        stats.evictions - cs.evictions
    );

    // CCE_OOCORE_MICRO=1: decompose the warm-paged vs in-RAM gap into
    // (a) whole-explain costs on one pinned target, (b) the page-hit
    // path, and (c) a raw full-column kernel pass — the three candidate
    // overheads when the hit rate is already ~100%.
    if std::env::var("CCE_OOCORE_MICRO").is_ok() {
        let unsat = oracle.iter().filter(|r| r.is_err()).count();
        eprintln!("    {unsat}/{} targets unsatisfiable", oracle.len());
        let reps = 256u32;
        let t = targets[0];
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = index.explain(&ctx, t, alpha);
        }
        let ram_us = t0.elapsed().as_secs_f64() * 1e6 / f64::from(reps);
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = paged.explain_row(t, alpha);
        }
        let paged_us = t0.elapsed().as_secs_f64() * 1e6 / f64::from(reps);
        let g = paged.store().geometry().clone();
        let id = g.col_page(0, 0);
        let t0 = Instant::now();
        let hit_reps = 100_000u32;
        for _ in 0..hit_reps {
            let _ = paged.store_mut().page(id).expect("hit");
        }
        let hit_ns = t0.elapsed().as_secs_f64() * 1e9 / f64::from(hit_reps);
        let a = vec![!0u64; g.words];
        let mut b = vec![!0u64; g.words];
        b[g.words / 2] = 7;
        let k = cce_core::kernels::active();
        let t0 = Instant::now();
        let mut sink = 0u64;
        for _ in 0..1_000 {
            sink = sink.wrapping_add((k.count_and)(&a, &b));
        }
        let pass_us = t0.elapsed().as_secs_f64() * 1e3;
        eprintln!(
            "  micro: ram {ram_us:.1}µs/explain | paged {paged_us:.1}µs/explain | \
             page hit {hit_ns:.0}ns | raw count_and {pass_us:.2}µs/pass (sink {sink})"
        );
    }

    let _ = std::fs::remove_file(&store_path);
    OocoreResult {
        rows,
        targets: targets.len(),
        kernels: cce_core::kernels::active().name,
        convert_secs,
        store_mb,
        cache_budget_mb: cache_budget as f64 / (1024.0 * 1024.0),
        ram_explains_per_sec,
        cold_explains_per_sec,
        warm_explains_per_sec,
        warm_vs_ram_ratio: warm_explains_per_sec / ram_explains_per_sec.max(1e-9),
        hit_rate: stats.hit_rate(),
    }
}

fn to_json(r: &OocoreResult, quick: bool) -> String {
    format!(
        "{{\n  \"bench\": \"oocore\",\n  \"rows\": {},\n  \"targets\": {},\n  \"quick\": {},\n  \
         \"kernels\": \"{}\",\n  \"convert_secs\": {:.2},\n  \"store_mb\": {:.1},\n  \
         \"cache_budget_mb\": {:.1},\n  \"ram_explains_per_sec\": {:.1},\n  \
         \"cold_explains_per_sec\": {:.1},\n  \"warm_explains_per_sec\": {:.1},\n  \
         \"warm_vs_ram_ratio\": {:.3},\n  \"hit_rate\": {:.3}\n}}\n",
        r.rows,
        r.targets,
        quick,
        r.kernels,
        r.convert_secs,
        r.store_mb,
        r.cache_budget_mb,
        r.ram_explains_per_sec,
        r.cold_explains_per_sec,
        r.warm_explains_per_sec,
        r.warm_vs_ram_ratio,
        r.hit_rate,
    )
}

/// Extracts every `"<key>": <number>` occurrence (document order).
fn extract_numbers(doc: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = doc;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let num: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push(v);
        }
    }
    out
}

/// One gated key: fails on >20% regression or a malformed baseline
/// (missing key, shape mismatch, zero/negative/NaN reference) — a
/// silently-skipped gate passes every regression.
fn check_key(current: &str, baseline: &str, key: &str) -> usize {
    let cur = extract_numbers(current, key);
    let base = extract_numbers(baseline, key);
    if base.is_empty() {
        eprintln!("GATE FAILURE: baseline has no \"{key}\" fields — regenerate the baseline");
        return 1;
    }
    if cur.len() != base.len() {
        eprintln!(
            "GATE FAILURE: baseline shape mismatch for \"{key}\" ({} vs {} entries) — regenerate the baseline",
            base.len(),
            cur.len()
        );
        return 1;
    }
    let mut failures = 0;
    for (i, (c, b)) in cur.iter().zip(&base).enumerate() {
        if !(b.is_finite() && *b > 0.0) {
            eprintln!(
                "GATE FAILURE: \"{key}\" entry {i}: baseline value {b} is not a positive number"
            );
            failures += 1;
            continue;
        }
        if *c < 0.8 * *b {
            eprintln!(
                "REGRESSION: \"{key}\" entry {i}: {c:.3} vs baseline {b:.3} (>{:.0}% drop)",
                (1.0 - c / b) * 100.0
            );
            failures += 1;
        } else {
            eprintln!("ok: \"{key}\" entry {i}: {c:.3} vs baseline {b:.3}");
        }
    }
    failures
}

fn check_baseline(current: &str, baseline: &str) -> usize {
    check_key(current, baseline, "warm_explains_per_sec")
        + check_key(current, baseline, "warm_vs_ram_ratio")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let quick = flag("--quick")
        || std::env::var("CCE_BENCH_QUICK")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
    let out_path = opt("--out").unwrap_or_else(|| "BENCH_oocore.json".to_string());
    let baseline_path = opt("--baseline");
    // The acceptance scale is "1M+ rows"; quick mode shrinks the context
    // so CI stays fast, and the ratio gate binds only at full scale.
    let rows = if quick { 200_000 } else { 1_000_000 };
    let n_targets = if quick { 32 } else { 64 };
    // Pages sized to the column: a bitset column should span very few
    // frames (each extra frame is a scattered 16 KiB allocation whose
    // pointer chase and kernel restart cost ~3× the popcount work at
    // scale) without zero-padding waste (a 200k-row column is ~25 KiB
    // of live words; a 64 KiB frame would pad 60% of it).
    let page_size = opt("--page-size")
        .map(|v| v.parse::<usize>().expect("--page-size must be an integer"))
        .unwrap_or(if quick { 8_192 } else { 65_536 });

    eprintln!("running oocore bench: rows={rows} targets={n_targets} page_size={page_size}…");
    let r = run(rows, n_targets, page_size);
    eprintln!(
        "  convert {:.1}s ({:.0} MB) | ram {:.1}/s | cold {:.1}/s | warm {:.1}/s \
         ({:.0}% of ram, hit rate {:.0}%, cache {:.0} MiB)",
        r.convert_secs,
        r.store_mb,
        r.ram_explains_per_sec,
        r.cold_explains_per_sec,
        r.warm_explains_per_sec,
        r.warm_vs_ram_ratio * 100.0,
        r.hit_rate * 100.0,
        r.cache_budget_mb,
    );

    let json = to_json(&r, quick);
    std::fs::write(&out_path, &json).expect("write bench json");
    eprintln!("wrote {out_path}");
    cce_bench::dump_metrics("bench_oocore");

    let mut failures = 0;
    // The acceptance bound: warm out-of-core serving keeps ≥ 25% of the
    // in-RAM throughput with the cache capped at 25% of the columns.
    if !quick && r.warm_vs_ram_ratio < 0.25 {
        eprintln!(
            "ACCEPTANCE FAILURE: warm_vs_ram_ratio {:.3} < 0.25 at {} rows",
            r.warm_vs_ram_ratio, r.rows
        );
        failures += 1;
    }
    if let Some(bp) = baseline_path {
        match std::fs::read_to_string(&bp) {
            Ok(baseline) => {
                let n = check_baseline(&json, &baseline);
                if n == 0 {
                    eprintln!("no regressions against {bp}");
                }
                failures += n;
            }
            Err(e) => {
                eprintln!("GATE FAILURE: baseline {bp} unreadable ({e})");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} gate failure(s)");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CUR: &str = r#"{"warm_explains_per_sec": 500.0, "warm_vs_ram_ratio": 0.6}"#;

    #[test]
    fn healthy_baseline_passes_and_regressions_fail() {
        assert_eq!(check_baseline(CUR, CUR), 0);
        let fast = r#"{"warm_explains_per_sec": 9000.0, "warm_vs_ram_ratio": 0.6}"#;
        assert_eq!(check_baseline(CUR, fast), 1);
    }

    /// Every baseline malformation must FAIL the gate, never skip it.
    #[test]
    fn corrupted_baseline_fails_loudly() {
        let missing = r#"{"warm_explains_per_sec": 500.0}"#;
        assert!(check_baseline(CUR, missing) > 0);
        let zeroed = r#"{"warm_explains_per_sec": 0, "warm_vs_ram_ratio": 0.6}"#;
        assert!(check_baseline(CUR, zeroed) > 0);
        let nan = r#"{"warm_explains_per_sec": NaN, "warm_vs_ram_ratio": 0.6}"#;
        assert!(check_baseline(CUR, nan) > 0);
        assert!(check_baseline(CUR, "{}") > 0);
        assert!(check_baseline(CUR, "not json at all") > 0);
    }
}
