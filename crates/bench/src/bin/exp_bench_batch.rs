//! `exp_bench_batch` — measures the batch explanation engine and writes
//! `BENCH_batch.json`, the first entry of the repo's `BENCH_*` perf
//! trajectory.
//!
//! Three paths are timed over the same `explain_all` workload:
//!
//! * **before** — the pre-engine path: eager full-rescan indexed explain,
//!   sequential, fresh allocations per target
//!   ([`ContextIndex::explain_eager`]);
//! * **lazy_seq** — lazy-greedy (CELF) selection with scratch reuse,
//!   still sequential ([`ContextIndex::explain_with`]);
//! * **after** — the full engine: lazy greedy + scratch reuse +
//!   duplicate-row memoization + work-stealing scheduler
//!   ([`Cce::explain_all_parallel`]).
//!
//! Alongside wall-clock rows/sec it records p50/p99 per-key latency, the
//! memo hit rate, and the observability counters the optimizations move
//! (`cce_explain_violator_scans_total`, `cce_lazy_greedy_skips_total`).
//!
//! A separate **large-context** entry exercises the SIMD + striped
//! kernel path at production scale: one Loan context of 1 000 000 rows
//! (200 000 in `--quick`), explained at ~512 sampled targets through
//! [`ContextIndex::explain_striped`], reporting index build time and
//! `explains_per_sec` — the number the kernel work moves.
//!
//! Flags / environment:
//!
//! * `--quick` or `CCE_BENCH_QUICK=1` — 2 000-row contexts and a
//!   200 000-row large entry (CI mode; default is the 10 000-row /
//!   1 000 000-row workload of the acceptance criteria),
//! * `--out <path>` — output path (default `BENCH_batch.json`),
//! * `--baseline <path>` — compare against a previous run and exit
//!   non-zero when `after` rows/sec or the large entry's
//!   `explains_per_sec` regresses by more than 20% — or when the
//!   baseline itself is malformed (shape mismatch, zero/NaN fields):
//!   a silently-skipped gate passes every regression.

use std::time::Instant;

use cce_core::kernels::StripeConfig;
use cce_core::{Alpha, Cce, CceConfig, Context, ContextIndex, ExplainScratch};
use cce_dataset::{synth, BinSpec};

/// One `(dataset, buckets, alpha)` measurement.
struct RunResult {
    dataset: &'static str,
    buckets: usize,
    alpha: f64,
    rows: usize,
    classes: usize,
    memo_hit_rate: f64,
    before_rows_per_sec: f64,
    lazy_seq_rows_per_sec: f64,
    after_rows_per_sec: f64,
    speedup: f64,
    p50_ns: u64,
    p99_ns: u64,
    violator_scans_before: u64,
    violator_scans_after: u64,
    lazy_skip_ratio: f64,
}

/// Sums a counter family's value, optionally restricted to one `algo`
/// label, from a fresh registry snapshot.
fn counter_value(name: &str, algo: Option<&str>) -> u64 {
    cce_obs::registry()
        .snapshot()
        .entries
        .iter()
        .filter(|e| {
            e.name == name
                && algo.is_none_or(|a| e.labels.get("algo").map(String::as_str) == Some(a))
        })
        .map(|e| match e.value {
            cce_obs::MetricValue::Counter(v) => v,
            _ => 0,
        })
        .sum()
}

/// Nearest-rank percentile: the sample at 1-based rank `⌈pct·n⌉`,
/// clamped to `[1, n]`. The previous `round((n-1)·pct)` index sat a
/// half-step *below* the named order statistic (for 100 samples it read
/// p99 from position 98.01 → rank 99 only by rounding luck, and p50
/// from rank 50.5 → biased low), so p50/p99 systematically understated
/// tail latency.
fn percentile(sorted_ns: &[u64], pct: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let n = sorted_ns.len();
    let rank = (pct * n as f64).ceil() as usize;
    sorted_ns[rank.clamp(1, n) - 1]
}

/// Runs `f` `reps` times and returns the fastest wall-clock seconds.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn run_config(
    dataset: &'static str,
    buckets: usize,
    alpha_v: f64,
    rows: usize,
    threads: usize,
    reps: usize,
) -> RunResult {
    // Generate at the exact requested row count (`general_dataset` scales
    // the paper's sizes; the bench wants a controlled context).
    let raw = match dataset {
        "Loan" => synth::loan::generate(rows, 42),
        "Compas" => synth::compas::generate(rows, 42),
        other => panic!("unsupported bench dataset {other}"),
    };
    let ds = raw.encode(&BinSpec::uniform(buckets));
    let ctx = Context::from_recorded(&ds);
    let alpha = Alpha::new(alpha_v).expect("valid alpha");
    let n = ctx.len();

    // Every measured side pays the full `explain_all` cost, index build
    // included — that is what the batch entry point actually does.

    // --- before: eager sequential (the pre-engine explain_all) ---------
    let scans_eager_0 = counter_value("cce_explain_violator_scans_total", Some("indexed_eager"));
    let mut before_keys = 0usize;
    let before_secs = time_best(reps, || {
        let idx = ContextIndex::new(&ctx);
        let mut keys = 0usize;
        for t in 0..n {
            keys += usize::from(idx.explain_eager(&ctx, t, alpha).is_ok());
        }
        before_keys = keys;
    });
    let violator_scans_before =
        (counter_value("cce_explain_violator_scans_total", Some("indexed_eager")) - scans_eager_0)
            / reps as u64;

    // --- lazy sequential with scratch reuse ----------------------------
    let scans_lazy_0 = counter_value("cce_explain_violator_scans_total", Some("indexed"));
    let skips_0 = counter_value("cce_lazy_greedy_skips_total", None);
    let mut lazy_keys = 0usize;
    let lazy_secs = time_best(reps, || {
        let idx = ContextIndex::new(&ctx);
        let mut scratch = ExplainScratch::new();
        let mut keys = 0usize;
        for t in 0..n {
            keys += usize::from(idx.explain_with(&ctx, t, alpha, &mut scratch).is_ok());
        }
        lazy_keys = keys;
    });
    let violator_scans_after = (counter_value("cce_explain_violator_scans_total", Some("indexed"))
        - scans_lazy_0)
        / reps as u64;
    let lazy_skips = (counter_value("cce_lazy_greedy_skips_total", None) - skips_0) / reps as u64;
    assert_eq!(
        before_keys, lazy_keys,
        "lazy and eager paths must succeed on identical targets"
    );

    // --- per-key latency percentiles (separate pass: the per-key timer
    // pairs would otherwise inflate the throughput numbers) -------------
    let idx = ContextIndex::new(&ctx);
    let mut scratch = ExplainScratch::new();
    let mut per_key_ns: Vec<u64> = Vec::with_capacity(n);
    for t in 0..n {
        let k0 = Instant::now();
        let _ = idx.explain_with(&ctx, t, alpha, &mut scratch);
        per_key_ns.push(k0.elapsed().as_nanos() as u64);
    }

    // --- after: the full engine (memo + work stealing) -----------------
    let cce = Cce::with_context(
        ctx.clone(),
        CceConfig {
            alpha,
            ..CceConfig::default()
        },
    );
    let warm = cce.explain_all_parallel(threads); // warm-up + correctness
    assert_eq!(warm.len(), lazy_keys, "engine must produce the same keys");
    let after_secs = time_best(reps, || {
        assert_eq!(cce.explain_all_parallel(threads).len(), lazy_keys);
    });

    let (class_reps, _) = ctx.duplicate_classes();
    let classes = class_reps.len();
    per_key_ns.sort_unstable();
    let denom = violator_scans_after + lazy_skips;
    RunResult {
        dataset,
        buckets,
        alpha: alpha_v,
        rows: n,
        classes,
        memo_hit_rate: (n - classes) as f64 / n as f64,
        before_rows_per_sec: n as f64 / before_secs,
        lazy_seq_rows_per_sec: n as f64 / lazy_secs,
        after_rows_per_sec: n as f64 / after_secs,
        speedup: before_secs / after_secs,
        p50_ns: percentile(&per_key_ns, 0.50),
        p99_ns: percentile(&per_key_ns, 0.99),
        violator_scans_before,
        violator_scans_after,
        lazy_skip_ratio: if denom == 0 {
            0.0
        } else {
            lazy_skips as f64 / denom as f64
        },
    }
}

/// The 1M-row (200k in quick mode) single-huge-context measurement:
/// index build time plus sampled-target explain throughput through the
/// striped kernel path.
struct LargeResult {
    dataset: &'static str,
    rows: usize,
    targets: usize,
    kernels: &'static str,
    stripe_threads: usize,
    index_build_ms: f64,
    explains_per_sec: f64,
    /// Fractional µs: at quick-mode sizes a striped explain is
    /// sub-microsecond, and integer-µs truncation reported `p50_us: 0`.
    p50_us: f64,
    p99_us: f64,
}

fn run_large(rows: usize) -> LargeResult {
    let raw = synth::loan::generate(rows, 42);
    let ds = raw.encode(&BinSpec::uniform(10));
    let ctx = Context::from_recorded(&ds);
    let alpha = Alpha::ONE;
    let stripes = StripeConfig::default();

    let t0 = Instant::now();
    let idx = ContextIndex::with_stripes(&ctx, &stripes);
    let index_build_ms = t0.elapsed().as_secs_f64() * 1_000.0;

    // Explaining every row of a 1M context would take the eager-scale
    // path minutes; ~512 evenly-spaced targets measure the same kernel
    // work with stable statistics.
    let n_targets = 512.min(rows);
    let step = (rows / n_targets).max(1);
    let targets: Vec<usize> = (0..n_targets).map(|i| i * step).collect();
    let mut scratch = ExplainScratch::new();
    // Warm-up pass (page in the postings, settle the kernel dispatch).
    for &t in targets.iter().take(32) {
        let _ = idx.explain_striped(&ctx, t, alpha, &mut scratch, &stripes);
    }
    let mut per_key_ns: Vec<u64> = Vec::with_capacity(targets.len());
    let t1 = Instant::now();
    for &t in &targets {
        let k0 = Instant::now();
        let _ = idx.explain_striped(&ctx, t, alpha, &mut scratch, &stripes);
        per_key_ns.push(k0.elapsed().as_nanos() as u64);
    }
    let secs = t1.elapsed().as_secs_f64();
    per_key_ns.sort_unstable();
    LargeResult {
        dataset: "Loan",
        rows,
        targets: targets.len(),
        kernels: cce_core::kernels::active().name,
        stripe_threads: stripes.threads,
        index_build_ms,
        explains_per_sec: targets.len() as f64 / secs.max(1e-9),
        p50_us: percentile(&per_key_ns, 0.50) as f64 / 1_000.0,
        p99_us: percentile(&per_key_ns, 0.99) as f64 / 1_000.0,
    }
}

fn large_to_json(l: &LargeResult) -> String {
    format!(
        "  \"large_context\": {{\"dataset\": \"{}\", \"rows\": {}, \"targets\": {}, \
         \"kernels\": \"{}\", \"stripe_threads\": {}, \"index_build_ms\": {:.1}, \
         \"explains_per_sec\": {:.1}, \"p50_us\": {:.3}, \"p99_us\": {:.3}}},\n",
        l.dataset,
        l.rows,
        l.targets,
        l.kernels,
        l.stripe_threads,
        l.index_build_ms,
        l.explains_per_sec,
        l.p50_us,
        l.p99_us
    )
}

fn to_json(
    results: &[RunResult],
    large: &LargeResult,
    rows: usize,
    threads: usize,
    quick: bool,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"batch_engine\",\n");
    out.push_str(&format!("  \"rows\": {rows},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&large_to_json(large));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"dataset\": \"{}\", ", r.dataset));
        out.push_str(&format!("\"buckets\": {}, ", r.buckets));
        out.push_str(&format!("\"alpha\": {}, ", r.alpha));
        out.push_str(&format!("\"rows\": {}, ", r.rows));
        out.push_str(&format!("\"classes\": {}, ", r.classes));
        out.push_str(&format!("\"memo_hit_rate\": {:.4}, ", r.memo_hit_rate));
        out.push_str(&format!(
            "\"before_rows_per_sec\": {:.1}, ",
            r.before_rows_per_sec
        ));
        out.push_str(&format!(
            "\"lazy_seq_rows_per_sec\": {:.1}, ",
            r.lazy_seq_rows_per_sec
        ));
        out.push_str(&format!(
            "\"after_rows_per_sec\": {:.1}, ",
            r.after_rows_per_sec
        ));
        out.push_str(&format!("\"speedup\": {:.2}, ", r.speedup));
        out.push_str(&format!("\"p50_ns\": {}, ", r.p50_ns));
        out.push_str(&format!("\"p99_ns\": {}, ", r.p99_ns));
        out.push_str(&format!(
            "\"violator_scans_before\": {}, ",
            r.violator_scans_before
        ));
        out.push_str(&format!(
            "\"violator_scans_after\": {}, ",
            r.violator_scans_after
        ));
        out.push_str(&format!("\"lazy_skip_ratio\": {:.4}", r.lazy_skip_ratio));
        out.push('}');
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts every `"<key>": <number>` occurrence from a JSON document, in
/// document order — enough structure for the baseline comparison without
/// a JSON dependency.
fn extract_numbers(doc: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = doc;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let num: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push(v);
        }
    }
    out
}

/// Compares one gated key between the current and baseline documents;
/// returns the number of failures (0 = pass). A failure is either a
/// regression past 20% or a **malformed baseline** — missing key, shape
/// mismatch, zero/negative/NaN reference value. The old behavior of
/// "skipping" on mismatch meant a truncated or hand-edited baseline
/// silently disabled the gate; now it fails the build until the
/// baseline is regenerated.
fn check_key(current: &str, baseline: &str, key: &str) -> usize {
    let cur = extract_numbers(current, key);
    let base = extract_numbers(baseline, key);
    if base.is_empty() {
        eprintln!("GATE FAILURE: baseline has no \"{key}\" fields — regenerate the baseline");
        return 1;
    }
    if cur.len() != base.len() {
        eprintln!(
            "GATE FAILURE: baseline shape mismatch for \"{key}\" ({} vs {} entries) — regenerate the baseline",
            base.len(),
            cur.len()
        );
        return 1;
    }
    let mut failures = 0;
    for (i, (c, b)) in cur.iter().zip(&base).enumerate() {
        if !(b.is_finite() && *b > 0.0) {
            eprintln!(
                "GATE FAILURE: \"{key}\" entry {i}: baseline value {b} is not a positive number"
            );
            failures += 1;
            continue;
        }
        if *c < 0.8 * *b {
            eprintln!(
                "REGRESSION: \"{key}\" entry {i}: {c:.1} vs baseline {b:.1} (>{:.0}% drop)",
                (1.0 - c / b) * 100.0
            );
            failures += 1;
        } else {
            eprintln!("ok: \"{key}\" entry {i}: {c:.1} vs baseline {b:.1}");
        }
    }
    failures
}

/// Gates both the batch-engine throughput and the large-context explain
/// rate; returns the total failure count (0 = pass).
fn check_baseline(current: &str, baseline: &str) -> usize {
    check_key(current, baseline, "after_rows_per_sec")
        + check_key(current, baseline, "explains_per_sec")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let quick = flag("--quick")
        || std::env::var("CCE_BENCH_QUICK")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
    let out_path = opt("--out").unwrap_or_else(|| "BENCH_batch.json".to_string());
    let baseline_path = opt("--baseline");
    let rows = if quick { 2_000 } else { 10_000 };
    let reps = if quick { 2 } else { 3 };
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);

    // The acceptance workload (Loan at α ∈ {1.0, 0.95}) plus a coarse
    // 4-bucket encode, where binning collisions make rows collide and the
    // duplicate-row memoization carries the win.
    let configs: [(&'static str, usize, f64); 3] =
        [("Loan", 10, 1.0), ("Loan", 10, 0.95), ("Loan", 4, 1.0)];
    let mut results = Vec::new();
    for (dataset, buckets, alpha) in configs {
        eprintln!("running {dataset} buckets={buckets} α={alpha} rows={rows} threads={threads}…");
        let r = run_config(dataset, buckets, alpha, rows, threads, reps);
        eprintln!(
            "  before {:>9.0} rows/s | lazy seq {:>9.0} | engine {:>9.0} ({:.2}×) | memo {:.0}% | skip {:.0}%",
            r.before_rows_per_sec,
            r.lazy_seq_rows_per_sec,
            r.after_rows_per_sec,
            r.speedup,
            r.memo_hit_rate * 100.0,
            r.lazy_skip_ratio * 100.0
        );
        results.push(r);
    }

    let large_rows = if quick { 200_000 } else { 1_000_000 };
    eprintln!("running large-context Loan rows={large_rows} (striped kernels)…");
    let large = run_large(large_rows);
    eprintln!(
        "  kernels={} stripes={} | index build {:.0} ms | {:.1} explains/s (p50 {:.3} µs, p99 {:.3} µs over {} targets)",
        large.kernels,
        large.stripe_threads,
        large.index_build_ms,
        large.explains_per_sec,
        large.p50_us,
        large.p99_us,
        large.targets
    );

    let json = to_json(&results, &large, rows, threads, quick);
    std::fs::write(&out_path, &json).expect("write bench json");
    eprintln!("wrote {out_path}");
    cce_bench::dump_metrics("bench_batch");

    if let Some(bp) = baseline_path {
        match std::fs::read_to_string(&bp) {
            Ok(baseline) => {
                let failures = check_baseline(&json, &baseline);
                if failures > 0 {
                    eprintln!("{failures} gate failure(s) against {bp}");
                    std::process::exit(1);
                }
                eprintln!("no regressions against {bp}");
            }
            Err(e) => {
                eprintln!("GATE FAILURE: baseline {bp} unreadable ({e})");
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins nearest-rank on the canonical 1..=100 sample: p50 must be
    /// exactly 50 and p99 exactly 99 (the old rounded `(n-1)·pct` index
    /// returned 50 only after reading rank 50.5 rounded down-ish, and
    /// sat below the named statistic in general).
    #[test]
    fn percentile_pins_p50_p99_of_1_to_100() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.90), 90);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.00), 100);
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[42], 0.99), 42);
        // n=2: ⌈0.5·2⌉ = 1 → the lower sample, never an interpolation.
        assert_eq!(percentile(&[10, 20], 0.5), 10);
    }

    const CUR: &str = r#"{
  "large_context": {"explains_per_sec": 500.0},
  "results": [{"after_rows_per_sec": 1000.0}, {"after_rows_per_sec": 2000.0}]
}"#;

    #[test]
    fn healthy_baseline_passes_and_regressions_fail() {
        let same = CUR;
        assert_eq!(check_baseline(CUR, same), 0);
        let fast = r#"{
  "large_context": {"explains_per_sec": 500.0},
  "results": [{"after_rows_per_sec": 9000.0}, {"after_rows_per_sec": 2000.0}]
}"#;
        assert_eq!(check_baseline(CUR, fast), 1);
    }

    /// The corrupted-baseline matrix: every malformation must FAIL the
    /// gate (non-zero), never silently pass.
    #[test]
    fn corrupted_baseline_fails_loudly() {
        // Missing key entirely (e.g. a pre-large-context baseline).
        let no_large =
            r#"{"results": [{"after_rows_per_sec": 1000.0}, {"after_rows_per_sec": 2000.0}]}"#;
        assert!(check_baseline(CUR, no_large) > 0);
        // Truncated results array (shape mismatch).
        let truncated = r#"{
  "large_context": {"explains_per_sec": 500.0},
  "results": [{"after_rows_per_sec": 1000.0}]
}"#;
        assert!(check_baseline(CUR, truncated) > 0);
        // Zeroed field: any current value would beat 0.8 × 0.
        let zeroed = r#"{
  "large_context": {"explains_per_sec": 0},
  "results": [{"after_rows_per_sec": 1000.0}, {"after_rows_per_sec": 2000.0}]
}"#;
        assert!(check_baseline(CUR, zeroed) > 0);
        // NaN field: every comparison against NaN is false → would pass.
        let nan = r#"{
  "large_context": {"explains_per_sec": 500.0},
  "results": [{"after_rows_per_sec": NaN}, {"after_rows_per_sec": 2000.0}]
}"#;
        assert!(check_baseline(CUR, nan) > 0);
        // Outright garbage / empty document.
        assert!(check_baseline(CUR, "{}") > 0);
        assert!(check_baseline(CUR, "not json at all") > 0);
    }
}
