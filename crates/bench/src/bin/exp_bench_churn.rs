//! `exp_bench_churn` — measures incremental ΔI index maintenance and
//! writes `BENCH_churn.json`.
//!
//! The tentpole claim under test: patching the [`ContextIndex`] in place
//! (insert/evict deltas — generational tombstones, seed-table cell
//! patches, incremental twin-hash certificate) makes a context arrival
//! **explainable ≥10× faster** than the pre-delta path, which rebuilt
//! the whole engine (index + duplicate-class partition) on any change.
//! Measured at 100 000 live rows — the "100k+" scale the acceptance
//! criteria name — in quick mode too: the update path is cheap enough
//! that CI affords the real context size, only the event counts shrink.
//!
//! Reported entries:
//!
//! * **arrival-to-explainable latency** — per-arrival wall-clock until
//!   the engine can serve explains again: one [`BatchEngine::push`]
//!   delta (patch) vs one full [`BatchEngine::new`] rebuild over the
//!   grown context (rebuild); p50/p99 µs for the patch side, mean ms
//!   for the rebuild side (a rebuild has no meaningful per-event
//!   distribution at the rep counts a bench can afford);
//! * **sustained churn throughput** — a steady-state ΔI sliding window
//!   (push + granule eviction + periodic compaction) in events/sec,
//!   patch vs rebuild-per-granule;
//! * **update_speedup** — rebuild mean latency over patch p50 latency.
//!   The bench itself enforces the acceptance bound (`≥ 10×`) and
//!   exits non-zero below it, baseline or no baseline.
//!
//! Flags / environment:
//!
//! * `--quick` or `CCE_BENCH_QUICK=1` — fewer churn events (CI mode);
//!   the context stays at 100k rows,
//! * `--out <path>` — output path (default `BENCH_churn.json`),
//! * `--baseline <path>` — compare against a previous run and exit
//!   non-zero when `patch_events_per_sec` or `update_speedup` regresses
//!   by more than 20% — or when the baseline itself is malformed
//!   (missing keys, shape mismatch, zero/NaN fields): a silently-skipped
//!   gate passes every regression.

use std::time::Instant;

use cce_core::engine::BatchEngine;
use cce_core::{Alpha, Context, WorkBudget};
use cce_dataset::{synth, BinSpec, Instance, Label};

/// Nearest-rank percentile over a sorted sample (see `exp_bench_batch`).
fn percentile(sorted_ns: &[u64], pct: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let n = sorted_ns.len();
    let rank = (pct * n as f64).ceil() as usize;
    sorted_ns[rank.clamp(1, n) - 1]
}

struct ChurnResult {
    rows: usize,
    events: usize,
    kernels: &'static str,
    /// Patch side: per-arrival insert-delta latency.
    patch_p50_us: f64,
    patch_p99_us: f64,
    /// Rebuild side: full engine rebuild per arrival (the pre-delta
    /// behavior), mean over `rebuild_reps`.
    rebuild_mean_ms: f64,
    /// rebuild mean / patch p50 — the acceptance ratio.
    update_speedup: f64,
    /// Steady-state ΔI window events/sec, deltas + compaction.
    patch_events_per_sec: f64,
    /// Steady-state events/sec when every ΔI granule pays a rebuild.
    rebuild_events_per_sec: f64,
    /// Post-churn explain latency through the patched index (sanity:
    /// patching must not degrade the read side).
    explain_p50_us: f64,
}

fn run(rows: usize, events: usize, rebuild_reps: usize) -> ChurnResult {
    let raw = synth::loan::generate(rows + events + events, 42);
    let ds = raw.encode(&BinSpec::uniform(10));
    let pool = Context::from_recorded(&ds);
    let alpha = Alpha::ONE;
    let arrivals: Vec<(Instance, Label)> = (rows..rows + events + events)
        .map(|r| (pool.instance(r).clone(), pool.prediction(r)))
        .collect();

    let base_ctx = {
        let xs: Vec<Instance> = (0..rows).map(|r| pool.instance(r).clone()).collect();
        let ps: Vec<Label> = (0..rows).map(|r| pool.prediction(r)).collect();
        Context::new(pool.schema_arc(), xs, ps)
    };

    eprintln!("  building base engine over {rows} rows…");
    let mut engine = BatchEngine::new(base_ctx.clone(), alpha);

    // --- arrival-to-explainable: patch side ----------------------------
    // Each event is one insert delta; the engine is explainable the
    // moment push returns (no rebuild, no invalidation).
    let mut per_event_ns: Vec<u64> = Vec::with_capacity(events);
    for (x, p) in arrivals.iter().take(events).cloned() {
        let t0 = Instant::now();
        engine.push(x, p).expect("arrival width matches");
        per_event_ns.push(t0.elapsed().as_nanos() as u64);
    }
    per_event_ns.sort_unstable();
    let patch_p50_us = percentile(&per_event_ns, 0.50) as f64 / 1_000.0;
    let patch_p99_us = percentile(&per_event_ns, 0.99) as f64 / 1_000.0;

    // The patched engine must actually serve: explain freshly arrived
    // rows and record the read-side latency.
    let mut explain_ns: Vec<u64> = Vec::new();
    for i in 0..32.min(events) {
        let t = engine.len() - 1 - i;
        let t0 = Instant::now();
        // A NoConformantKey is a legitimate (and fully computed) answer
        // for a contradictory arrival at α = 1; only the latency matters.
        let _ = engine.explain_one(t, WorkBudget::unlimited());
        explain_ns.push(t0.elapsed().as_nanos() as u64);
    }
    explain_ns.sort_unstable();
    let explain_p50_us = percentile(&explain_ns, 0.50) as f64 / 1_000.0;

    // --- arrival-to-explainable: rebuild side --------------------------
    // The pre-delta behavior: any context change invalidates the engine,
    // so the arrival is explainable only after a full rebuild of the
    // grown context.
    let grown = engine.materialize();
    let mut rebuild_secs = 0.0;
    for _ in 0..rebuild_reps {
        let ctx = grown.clone();
        let t0 = Instant::now();
        let rebuilt = BatchEngine::new(ctx, alpha);
        rebuild_secs += t0.elapsed().as_secs_f64();
        assert_eq!(rebuilt.len(), engine.len());
    }
    let rebuild_mean_ms = rebuild_secs / rebuild_reps as f64 * 1_000.0;
    let update_speedup = (rebuild_mean_ms * 1_000.0) / patch_p50_us.max(1e-9);

    // --- sustained churn throughput: patch side ------------------------
    // Steady-state sliding window at `rows` capacity, ΔI = 64: every
    // arrival is a push delta, every 64th a granule eviction (tombstone
    // deltas + tail reclamation + threshold-driven compaction).
    const DELTA: usize = 64;
    let mut staged = 0usize;
    let capacity = engine.len();
    let t0 = Instant::now();
    for (x, p) in arrivals.iter().skip(events).take(events).cloned() {
        engine.push(x, p).expect("arrival width matches");
        staged += 1;
        if engine.len() > capacity && staged >= DELTA {
            engine.evict_oldest(staged);
            staged = 0;
        }
    }
    let patch_events_per_sec = events as f64 / t0.elapsed().as_secs_f64().max(1e-9);

    // --- sustained churn throughput: rebuild side ----------------------
    // The same slide pattern when every ΔI granule pays a rebuild. A few
    // granules are plenty — each one costs a full index build.
    let granules = rebuild_reps.max(2);
    let mut xs: Vec<Instance> = grown.instances().to_vec();
    let mut ps: Vec<Label> = (0..grown.len()).map(|r| grown.prediction(r)).collect();
    let t0 = Instant::now();
    for g in 0..granules {
        let start = (g * DELTA) % events;
        for (x, p) in arrivals.iter().skip(start).take(DELTA).cloned() {
            xs.push(x);
            ps.push(p);
        }
        xs.drain(..DELTA);
        ps.drain(..DELTA);
        let rebuilt = BatchEngine::new(
            Context::new(pool.schema_arc(), xs.clone(), ps.clone()),
            alpha,
        );
        assert!(!rebuilt.is_empty());
    }
    let rebuild_events_per_sec = (granules * DELTA) as f64 / t0.elapsed().as_secs_f64().max(1e-9);

    ChurnResult {
        rows,
        events,
        kernels: cce_core::kernels::active().name,
        patch_p50_us,
        patch_p99_us,
        rebuild_mean_ms,
        update_speedup,
        patch_events_per_sec,
        rebuild_events_per_sec,
        explain_p50_us,
    }
}

fn to_json(r: &ChurnResult, quick: bool) -> String {
    format!(
        "{{\n  \"bench\": \"churn\",\n  \"rows\": {},\n  \"events\": {},\n  \"quick\": {},\n  \"kernels\": \"{}\",\n  \
         \"patch_p50_us\": {:.2},\n  \"patch_p99_us\": {:.2},\n  \"rebuild_mean_ms\": {:.2},\n  \
         \"update_speedup\": {:.1},\n  \"patch_events_per_sec\": {:.1},\n  \
         \"rebuild_events_per_sec\": {:.1},\n  \"explain_p50_us\": {:.2}\n}}\n",
        r.rows,
        r.events,
        quick,
        r.kernels,
        r.patch_p50_us,
        r.patch_p99_us,
        r.rebuild_mean_ms,
        r.update_speedup,
        r.patch_events_per_sec,
        r.rebuild_events_per_sec,
        r.explain_p50_us,
    )
}

/// Extracts every `"<key>": <number>` occurrence (document order).
fn extract_numbers(doc: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = doc;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let num: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push(v);
        }
    }
    out
}

/// One gated key: fails on >20% regression or a malformed baseline
/// (missing key, shape mismatch, zero/negative/NaN reference) — the
/// same loud semantics as the batch gate; a skipped gate passes every
/// regression.
fn check_key(current: &str, baseline: &str, key: &str) -> usize {
    let cur = extract_numbers(current, key);
    let base = extract_numbers(baseline, key);
    if base.is_empty() {
        eprintln!("GATE FAILURE: baseline has no \"{key}\" fields — regenerate the baseline");
        return 1;
    }
    if cur.len() != base.len() {
        eprintln!(
            "GATE FAILURE: baseline shape mismatch for \"{key}\" ({} vs {} entries) — regenerate the baseline",
            base.len(),
            cur.len()
        );
        return 1;
    }
    let mut failures = 0;
    for (i, (c, b)) in cur.iter().zip(&base).enumerate() {
        if !(b.is_finite() && *b > 0.0) {
            eprintln!(
                "GATE FAILURE: \"{key}\" entry {i}: baseline value {b} is not a positive number"
            );
            failures += 1;
            continue;
        }
        if *c < 0.8 * *b {
            eprintln!(
                "REGRESSION: \"{key}\" entry {i}: {c:.1} vs baseline {b:.1} (>{:.0}% drop)",
                (1.0 - c / b) * 100.0
            );
            failures += 1;
        } else {
            eprintln!("ok: \"{key}\" entry {i}: {c:.1} vs baseline {b:.1}");
        }
    }
    failures
}

fn check_baseline(current: &str, baseline: &str) -> usize {
    check_key(current, baseline, "patch_events_per_sec")
        + check_key(current, baseline, "update_speedup")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let quick = flag("--quick")
        || std::env::var("CCE_BENCH_QUICK")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
    let out_path = opt("--out").unwrap_or_else(|| "BENCH_churn.json".to_string());
    let baseline_path = opt("--baseline");
    // The acceptance scale is "100k+ rows"; the delta path is cheap
    // enough that CI runs the real context size, so the ≥10× bound is
    // checked at scale in quick mode too.
    let rows = 100_000;
    let events = if quick { 2_000 } else { 10_000 };
    let rebuild_reps = if quick { 3 } else { 5 };

    eprintln!("running churn bench: rows={rows} events={events}…");
    let r = run(rows, events, rebuild_reps);
    eprintln!(
        "  patch p50 {:.1} µs (p99 {:.1}) | rebuild {:.1} ms | speedup {:.0}× | \
         sustained {:.0} ev/s patched vs {:.1} ev/s rebuilt | explain p50 {:.1} µs",
        r.patch_p50_us,
        r.patch_p99_us,
        r.rebuild_mean_ms,
        r.update_speedup,
        r.patch_events_per_sec,
        r.rebuild_events_per_sec,
        r.explain_p50_us,
    );

    let json = to_json(&r, quick);
    std::fs::write(&out_path, &json).expect("write bench json");
    eprintln!("wrote {out_path}");
    cce_bench::dump_metrics("bench_churn");

    let mut failures = 0;
    // The acceptance bound holds unconditionally, baseline or not.
    if r.update_speedup < 10.0 {
        eprintln!(
            "ACCEPTANCE FAILURE: update_speedup {:.1}× < 10× at {} rows",
            r.update_speedup, r.rows
        );
        failures += 1;
    }
    if let Some(bp) = baseline_path {
        match std::fs::read_to_string(&bp) {
            Ok(baseline) => {
                let n = check_baseline(&json, &baseline);
                if n == 0 {
                    eprintln!("no regressions against {bp}");
                }
                failures += n;
            }
            Err(e) => {
                eprintln!("GATE FAILURE: baseline {bp} unreadable ({e})");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} gate failure(s)");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CUR: &str = r#"{"patch_events_per_sec": 5000.0, "update_speedup": 50.0}"#;

    #[test]
    fn healthy_baseline_passes_and_regressions_fail() {
        assert_eq!(check_baseline(CUR, CUR), 0);
        let fast = r#"{"patch_events_per_sec": 90000.0, "update_speedup": 50.0}"#;
        assert_eq!(check_baseline(CUR, fast), 1);
    }

    /// Every baseline malformation must FAIL the gate, never skip it.
    #[test]
    fn corrupted_baseline_fails_loudly() {
        let missing = r#"{"patch_events_per_sec": 5000.0}"#;
        assert!(check_baseline(CUR, missing) > 0);
        let zeroed = r#"{"patch_events_per_sec": 0, "update_speedup": 50.0}"#;
        assert!(check_baseline(CUR, zeroed) > 0);
        let nan = r#"{"patch_events_per_sec": NaN, "update_speedup": 50.0}"#;
        assert!(check_baseline(CUR, nan) > 0);
        assert!(check_baseline(CUR, "{}") > 0);
        assert!(check_baseline(CUR, "not json at all") > 0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
