//! Regenerates the `case_study` experiment tables (see DESIGN.md §3).

fn main() {
    let cfg = cce_bench::ExpConfig::from_env();
    eprintln!("running experiment 'case_study' with {cfg:?}");
    let tables = cce_bench::experiments::case_study::run(&cfg);
    cce_bench::experiments::print_tables(&tables);
    cce_bench::dump_metrics("case_study");
}
