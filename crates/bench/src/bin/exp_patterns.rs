//! Regenerates the `patterns` experiment tables (see DESIGN.md §3).

fn main() {
    let cfg = cce_bench::ExpConfig::from_env();
    eprintln!("running experiment 'patterns' with {cfg:?}");
    let tables = cce_bench::experiments::patterns::run(&cfg);
    cce_bench::experiments::print_tables(&tables);
    cce_bench::dump_metrics("patterns");
}
