//! Regenerates the `em` experiment tables (see DESIGN.md §3).

fn main() {
    let cfg = cce_bench::ExpConfig::from_env();
    eprintln!("running experiment 'em' with {cfg:?}");
    let tables = cce_bench::experiments::em::run(&cfg);
    cce_bench::experiments::print_tables(&tables);
    cce_bench::dump_metrics("em");
}
