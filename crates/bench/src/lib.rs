//! The experiment harness regenerating every table and figure of the
//! paper's evaluation (§7 and Appendix B).
//!
//! Each experiment lives in [`experiments`] as a function returning
//! [`cce_metrics::Table`]s; the `src/bin` wrappers print them and
//! `run_all` writes the full report used by EXPERIMENTS.md.
//!
//! Scale knobs (environment variables):
//!
//! * `CCE_SCALE` — multiplies the paper's dataset sizes (default `0.2`;
//!   use `1` to regenerate at full size),
//! * `CCE_TARGETS` — instances explained per dataset (paper: 100;
//!   default 30),
//! * `CCE_SEED` — global seed (default 42).
//!
//! Absolute numbers differ from the paper's (different hardware, synthetic
//! data); the *shapes* — orderings, ratios, crossovers — are the
//! reproduction targets. See EXPERIMENTS.md for the side-by-side record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod methods;
pub mod setup;

pub use setup::{prepare, prepare_em, ExpConfig, Prepared, PreparedEm};

/// Snapshots the global observability registry to
/// `reports/metrics-<tag>.jsonl` (creating `reports/` if needed) so every
/// experiment leaves its counters next to its report. Empty snapshots are
/// skipped; IO failures are reported but never abort an experiment run.
pub fn dump_metrics(tag: &str) {
    let snapshot = cce_obs::registry().snapshot();
    if snapshot.entries.is_empty() {
        return;
    }
    if let Err(e) = std::fs::create_dir_all("reports") {
        eprintln!("warning: could not create reports/: {e}");
        return;
    }
    let path = format!("reports/metrics-{tag}.jsonl");
    match std::fs::write(&path, snapshot.to_jsonl_string()) {
        Ok(()) => eprintln!("metrics snapshot written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
