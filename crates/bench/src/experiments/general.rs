//! The main §7.3 evaluation over the five general datasets:
//! Table 4 (timing), Fig. 3a/3b (conformity/precision), Fig. 3c/3d
//! (recall/succinctness vs Xreason), Fig. 3e (faithfulness) and the §7.6
//! summary aggregates — all from a single pass per dataset.

use cce_core::Alpha;
use cce_dataset::synth::GENERAL_DATASETS;
use cce_metrics::report::{fmt_ms, fmt_pct};
use cce_metrics::{
    conformity, faithfulness, mean_precision, mean_succinctness, recall_pair, FaithfulnessParams,
    Table,
};

use crate::methods::{self, faithfulness_items, MethodRun};
use crate::setup::{prepare, sample_targets, ExpConfig};

/// Per-dataset measurements collected in one pass.
struct DatasetResult {
    name: String,
    /// `(method, avg ms, conformity, precision, faithfulness)`.
    methods: Vec<(String, f64, f64, f64, f64)>,
    cce_recall: f64,
    xr_recall: f64,
    cce_succ: f64,
    xr_succ: f64,
    xr_ms: f64,
}

fn evaluate(name: &str, cfg: &ExpConfig) -> DatasetResult {
    let prep = prepare(name, cfg);
    let targets = sample_targets(prep.ctx.len(), cfg.targets, cfg.seed);
    let (cce, sizes) = methods::run_cce(&prep, &targets, Alpha::ONE);
    let runs: Vec<MethodRun> = vec![
        methods::run_lime(&prep, &targets, &sizes, cfg.seed),
        methods::run_shap(&prep, &targets, &sizes, cfg.seed),
        methods::run_anchor(&prep, &targets, &sizes, cfg.seed),
        methods::run_gam(&prep, &targets, &sizes),
    ];
    let xr = methods::run_xreason(&prep, &targets);

    let fparams = FaithfulnessParams {
        seed: cfg.seed,
        ..Default::default()
    };
    let mut rows: Vec<(String, f64, f64, f64, f64)> = Vec::new();
    for run in std::iter::once(&cce).chain(runs.iter()) {
        let conf = conformity(&prep.ctx, &run.explained);
        let prec = mean_precision(&prep.ctx, &run.explained);
        let faith = faithfulness(
            &prep.model,
            &prep.train,
            &faithfulness_items(&prep, run),
            fparams,
        );
        rows.push((run.name.to_string(), run.avg_ms, conf, prec, faith));
    }

    // Recall & succinctness: only the conformant methods (CCE, Xreason).
    // CCE may skip contradicted targets; align by target row.
    let (mut rc, mut rx, mut pairs) = (0.0, 0.0, 0usize);
    for c in &cce.explained {
        let Some(x) = xr.explained.iter().find(|x| x.target == c.target) else {
            continue;
        };
        let (a, b) = recall_pair(&prep.ctx, c.target, &c.features, &x.features);
        rc += a;
        rx += b;
        pairs += 1;
    }
    let pairs = pairs.max(1) as f64;

    DatasetResult {
        name: name.to_string(),
        methods: rows,
        cce_recall: rc / pairs,
        xr_recall: rx / pairs,
        cce_succ: mean_succinctness(&cce.explained),
        xr_succ: mean_succinctness(&xr.explained),
        xr_ms: xr.avg_ms,
    }
}

/// Runs the full §7.3 evaluation and renders its tables.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let results: Vec<DatasetResult> = GENERAL_DATASETS
        .iter()
        .map(|name| evaluate(name, cfg))
        .collect();
    render(&results)
}

fn render(results: &[DatasetResult]) -> Vec<Table> {
    let method_names: Vec<String> = results[0].methods.iter().map(|(m, ..)| m.clone()).collect();
    // Column headers come from the dataset names actually evaluated.
    let header_strings: Vec<String> = std::iter::once("method".to_string())
        .chain(results.iter().map(|r| r.name.clone()))
        .collect();
    let hdr: Vec<&str> = header_strings.iter().map(String::as_str).collect();

    let mut t4 = Table::new(
        "Table 4: average time (ms) for computing explanations",
        &hdr,
    );
    for (mi, m) in method_names.iter().enumerate() {
        let mut row = vec![m.clone()];
        for r in results {
            row.push(fmt_ms(r.methods[mi].1));
        }
        t4.row(row);
    }
    let mut xr_row = vec!["Xreason".to_string()];
    for r in results {
        xr_row.push(fmt_ms(r.xr_ms));
    }
    t4.row(xr_row);

    let mut f3a = Table::new("Fig 3a: conformity (%) per dataset", &hdr);
    let mut f3b = Table::new("Fig 3b: precision (%) per dataset", &hdr);
    let mut f3e = Table::new("Fig 3e: faithfulness (lower is better) per dataset", &hdr);
    for (mi, m) in method_names.iter().enumerate() {
        let (mut ra, mut rb, mut re) = (vec![m.clone()], vec![m.clone()], vec![m.clone()]);
        for r in results {
            ra.push(fmt_pct(r.methods[mi].2));
            rb.push(fmt_pct(r.methods[mi].3));
            re.push(format!("{:.3}", r.methods[mi].4));
        }
        f3a.row(ra);
        f3b.row(rb);
        f3e.row(re);
    }

    let mut f3c = Table::new("Fig 3c: recall (%) of conformant methods", &hdr);
    let mut f3d = Table::new(
        "Fig 3d: succinctness (#features) of conformant methods",
        &hdr,
    );
    for (m, recall, succ) in [("CCE", true, true), ("Xreason", false, false)] {
        let mut rc = vec![m.to_string()];
        let mut rd = vec![m.to_string()];
        for r in results {
            rc.push(fmt_pct(if recall { r.cce_recall } else { r.xr_recall }));
            rd.push(format!("{:.2}", if succ { r.cce_succ } else { r.xr_succ }));
        }
        f3c.row(rc);
        f3d.row(rd);
    }

    // §7.6-style aggregates.
    let mut summary = Table::new(
        "Summary (§7.6): CCE vs the field, averaged over datasets",
        &["measure", "value"],
    );
    let avg = |f: &dyn Fn(&DatasetResult) -> f64| {
        results.iter().map(f).sum::<f64>() / results.len() as f64
    };
    let cce_ms = avg(&|r| r.methods[0].1);
    for (mi, m) in method_names.iter().enumerate().skip(1) {
        let ratio = avg(&|r| r.methods[mi].1) / cce_ms.max(1e-9);
        summary.row(vec![format!("speedup vs {m}"), format!("{ratio:.1}x")]);
    }
    summary.row(vec![
        "speedup vs Xreason".to_string(),
        format!("{:.1}x", avg(&|r| r.xr_ms) / cce_ms.max(1e-9)),
    ]);
    summary.row(vec![
        "CCE conformity".into(),
        fmt_pct(avg(&|r| r.methods[0].2)),
    ]);
    let heuristic_conf = (1..method_names.len())
        .map(|mi| avg(&|r| r.methods[mi].2))
        .sum::<f64>()
        / (method_names.len() - 1) as f64;
    summary.row(vec![
        "heuristic avg conformity".into(),
        fmt_pct(heuristic_conf),
    ]);
    summary.row(vec!["CCE recall".into(), fmt_pct(avg(&|r| r.cce_recall))]);
    summary.row(vec![
        "Xreason recall".into(),
        fmt_pct(avg(&|r| r.xr_recall)),
    ]);
    summary.row(vec![
        "Xreason/CCE succinctness".into(),
        format!(
            "{:.1}x",
            avg(&|r| r.xr_succ) / avg(&|r| r.cce_succ).max(1e-9)
        ),
    ]);

    vec![t4, f3a, f3b, f3c, f3d, f3e, summary]
}
