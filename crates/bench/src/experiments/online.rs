//! §7.4 online explanation monitoring: per-arrival update cost and final
//! key succinctness of OSRK vs SSRK over full inference streams.

use cce_core::{Alpha, OsrkMonitor, PickRule, SsrkMonitor};
use cce_dataset::synth::GENERAL_DATASETS;
use cce_metrics::Table;

use crate::setup::{prepare, sample_targets, ExpConfig};

/// Streams each dataset's inference set through both online monitors.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut t = Table::new(
        "§7.4: online monitoring — per-arrival time (ms) and final succinctness",
        &[
            "dataset",
            "OSRK ms/inst",
            "SSRK ms/inst",
            "OSRK succ",
            "SSRK succ",
        ],
    );
    let mut osrk_total = (0.0f64, 0.0f64);
    let mut ssrk_total = (0.0f64, 0.0f64);
    for name in GENERAL_DATASETS {
        let prep = prepare(name, cfg);
        let panel = sample_targets(prep.ctx.len(), cfg.targets.min(10), cfg.seed);
        let universe: Vec<_> = prep
            .ctx
            .instances()
            .iter()
            .cloned()
            .zip(prep.ctx.predictions().iter().copied())
            .collect();

        let (mut o_ms, mut o_succ) = (0.0f64, 0.0f64);
        let (mut s_ms, mut s_succ) = (0.0f64, 0.0f64);
        for &t0 in &panel {
            let x0 = prep.ctx.instance(t0).clone();
            let p0 = prep.ctx.prediction(t0);

            let mut osrk = OsrkMonitor::new(x0.clone(), p0, Alpha::ONE, cfg.seed);
            let start = std::time::Instant::now();
            for (i, (x, p)) in universe.iter().enumerate() {
                if i == t0 {
                    continue;
                }
                let _ = osrk.observe(x.clone(), *p);
            }
            o_ms += start.elapsed().as_secs_f64() * 1e3 / universe.len() as f64;
            o_succ += osrk.succinctness() as f64;

            let mut ssrk = SsrkMonitor::new(x0, p0, Alpha::ONE, &universe);
            let start = std::time::Instant::now();
            for (i, (x, p)) in universe.iter().enumerate() {
                if i == t0 {
                    continue;
                }
                let _ = ssrk.observe(x.clone(), *p);
            }
            s_ms += start.elapsed().as_secs_f64() * 1e3 / universe.len() as f64;
            s_succ += ssrk.succinctness() as f64;
        }
        let n = panel.len().max(1) as f64;
        t.row(vec![
            name.to_string(),
            format!("{:.4}", o_ms / n),
            format!("{:.4}", s_ms / n),
            format!("{:.2}", o_succ / n),
            format!("{:.2}", s_succ / n),
        ]);
        osrk_total.0 += o_ms / n;
        osrk_total.1 += o_succ / n;
        ssrk_total.0 += s_ms / n;
        ssrk_total.1 += s_succ / n;
    }
    let k = GENERAL_DATASETS.len() as f64;
    t.row(vec![
        "average".into(),
        format!("{:.4}", osrk_total.0 / k),
        format!("{:.4}", ssrk_total.0 / k),
        format!("{:.2}", osrk_total.1 / k),
        format!("{:.2}", ssrk_total.1 / k),
    ]);
    vec![t, pick_rule_table(cfg)]
}

/// Ablation: final OSRK key succinctness under each "arbitrary pick"
/// rule of Algorithm 2 line 11 (the `ablation` bench times them; this
/// table measures quality).
fn pick_rule_table(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Ablation: OSRK pick rule vs final succinctness (avg over panel)",
        &["dataset", "First", "MaxWeight", "MaxKill"],
    );
    for name in GENERAL_DATASETS {
        let prep = prepare(name, cfg);
        let panel = sample_targets(prep.ctx.len(), cfg.targets.min(8), cfg.seed);
        let mut row = vec![name.to_string()];
        for rule in [PickRule::First, PickRule::MaxWeight, PickRule::MaxKill] {
            let mut total = 0usize;
            for &t0 in &panel {
                let mut m = OsrkMonitor::new(
                    prep.ctx.instance(t0).clone(),
                    prep.ctx.prediction(t0),
                    Alpha::ONE,
                    cfg.seed,
                )
                .with_pick_rule(rule);
                for r in 0..prep.ctx.len() {
                    if r != t0 {
                        let _ = m.observe(prep.ctx.instance(r).clone(), prep.ctx.prediction(r));
                    }
                }
                total += m.succinctness();
            }
            row.push(format!("{:.2}", total as f64 / panel.len().max(1) as f64));
        }
        t.row(row);
    }
    t
}
