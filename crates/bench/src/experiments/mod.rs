//! One module per experiment of §7 / Appendix B.
//!
//! | module | regenerates |
//! |---|---|
//! | [`general`] | Table 4, Fig. 3a-3e, §7.6 summary |
//! | [`case_study`] | Fig. 1/2, Table 3, the IDS rule listing (§7.2) |
//! | [`online`] | §7.4 online timing & succinctness (OSRK vs SSRK) |
//! | [`tradeoff`] | Fig. 3f/3g — α trade-offs |
//! | [`buckets`] | Fig. 3h/3i and Fig. 4d — `#-bucket` impact |
//! | [`context`] | Fig. 3j/3k and Fig. 4e — context-size impact |
//! | [`monitor`] | Fig. 3l/3m — noise monitoring |
//! | [`em`] | Fig. 3n/3o/3p and §7.5 efficiency |
//! | [`alpha`] | Fig. 4a/4b/4c — precision vs α |
//! | [`dynamic`] | Fig. 4f/4g/4h — dynamic models |
//! | [`patterns`] | beyond the paper: §8 relative pattern summaries vs IDS |
//! | [`variance`] | §7.1's three-run averaging: key measures, mean ± half-range over 3 seeds |

pub mod alpha;
pub mod buckets;
pub mod case_study;
pub mod context;
pub mod dynamic;
pub mod em;
pub mod general;
pub mod monitor;
pub mod online;
pub mod patterns;
pub mod tradeoff;
pub mod variance;

use cce_metrics::Table;

use crate::setup::ExpConfig;

/// Runs every experiment, returning `(experiment name, tables)` pairs in
/// report order.
///
/// After each experiment the global observability registry is snapshotted
/// to `reports/metrics-<name>.jsonl` and reset, so each file holds only
/// that experiment's counters.
pub fn run_all(cfg: &ExpConfig) -> Vec<(&'static str, Vec<Table>)> {
    type Runner = fn(&ExpConfig) -> Vec<Table>;
    let runs: Vec<(&'static str, Runner)> = vec![
        ("case_study", case_study::run),
        ("general", general::run),
        ("online", online::run),
        ("tradeoff", tradeoff::run),
        ("buckets", buckets::run),
        ("context", context::run),
        ("monitor", monitor::run),
        ("em", em::run),
        ("alpha", alpha::run),
        ("dynamic", dynamic::run),
        ("patterns", patterns::run),
        ("variance", variance::run),
    ];
    let mut out = Vec::with_capacity(runs.len());
    for (name, run) in runs {
        let tables = run(cfg);
        crate::dump_metrics(name);
        cce_obs::registry().reset();
        out.push((name, tables));
    }
    out
}

/// Prints tables to stdout in aligned text form.
pub fn print_tables(tables: &[Table]) {
    for t in tables {
        println!("{}", t.text());
    }
}
