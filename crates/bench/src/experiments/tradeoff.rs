//! Fig. 3f/3g — trading conformity (α) for succinctness and speed.

use cce_core::{Alpha, Srk};
use cce_dataset::synth::GENERAL_DATASETS;
use cce_metrics::report::fmt_ms;
use cce_metrics::Table;

use crate::setup::{prepare, sample_targets, ExpConfig};

/// α values swept by the paper (1 down to 0.9).
pub const ALPHAS: [f64; 6] = [1.0, 0.98, 0.96, 0.94, 0.92, 0.9];

/// Runs the α sweep.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut f3f = Table::new(
        "Fig 3f: succinctness of SRK keys vs conformity bound α",
        &[
            "dataset", "α=1", "α=0.98", "α=0.96", "α=0.94", "α=0.92", "α=0.9",
        ],
    );
    let mut f3g = Table::new(
        "Fig 3g: avg explanation time (ms) vs α (Loan)",
        &["α", "time (ms)", "speedup vs α=1"],
    );

    let mut loan_times: Vec<f64> = Vec::new();
    for name in GENERAL_DATASETS {
        let prep = prepare(name, cfg);
        let targets = sample_targets(prep.ctx.len(), cfg.targets, cfg.seed);
        let mut row = vec![name.to_string()];
        for &a in &ALPHAS {
            let srk = Srk::new(Alpha::new(a).expect("valid alpha"));
            let start = std::time::Instant::now();
            let (mut total, mut count) = (0usize, 0usize);
            for &t in &targets {
                if let Ok(key) = srk.explain(&prep.ctx, t) {
                    total += key.succinctness();
                    count += 1;
                }
            }
            let ms = start.elapsed().as_secs_f64() * 1e3 / targets.len().max(1) as f64;
            if name == "Loan" {
                loan_times.push(ms);
            }
            row.push(format!("{:.2}", total as f64 / count.max(1) as f64));
        }
        f3f.row(row);
    }
    for (i, &a) in ALPHAS.iter().enumerate() {
        f3g.row(vec![
            format!("{a}"),
            fmt_ms(loan_times[i]),
            format!("{:.2}x", loan_times[0] / loan_times[i].max(1e-9)),
        ]);
    }
    vec![f3f, f3g]
}
