//! The §7.2 case study over Loan: Figure 1/2 explanations, the Table 3
//! feature-importance comparison, and the IDS pattern-level listing.

use cce_baselines::gam::GamParams;
use cce_baselines::{
    top_k_features, Anchor, AnchorParams, Gam, Ids, IdsParams, KernelShap, Lime, LimeParams,
    ShapParams, Xreason,
};
use cce_core::{Alpha, Srk};
use cce_metrics::report::fmt_ms;
use cce_metrics::Table;

use crate::setup::{prepare, time_ms, ExpConfig};

/// Runs the case study and renders its tables.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    // The case study always uses the full 614-row Loan dataset (it is tiny
    // and the x0 of Example 1 — a denied urban application — must exist).
    let cfg = ExpConfig { scale: 1.0, ..*cfg };
    let cfg = &cfg;
    let prep = prepare("Loan", cfg);
    let schema = prep.infer.schema();
    let credit = schema.index_of("Credit").expect("Loan has Credit");
    let area = schema.index_of("Area").expect("Loan has Area");

    // x0: a denied urban application with a poor credit record (Ex. 1).
    // Among the candidates, prefer one whose relative key has ≥ 2 features
    // so the case study exercises a non-trivial explanation (the paper's
    // x0 has key {Income, Credit}).
    let candidates: Vec<usize> = (0..prep.infer.len())
        .filter(|&t| {
            prep.infer.instance(t)[credit] == 1
                && prep.infer.instance(t)[area] == 0
                && prep.ctx.prediction(t).0 == 0
        })
        .collect();
    let srk = Srk::new(Alpha::ONE);
    let x0 = candidates
        .iter()
        .copied()
        .find(|&t| {
            srk.explain(&prep.ctx, t)
                .map(|k| k.succinctness() >= 2)
                .unwrap_or(false)
        })
        .or_else(|| candidates.first().copied())
        .unwrap_or(0);
    let x = prep.infer.instance(x0).clone();
    let outcome = prep.infer.label_name(prep.ctx.prediction(x0));

    let mut fig1 = Table::new(
        "Fig 1/2: explanations of x0 (denied urban Loan application)",
        &["method", "time (ms)", "size", "explanation"],
    );

    // Xreason (formal, whole feature space).
    let xr = Xreason::new(&prep.model, schema);
    let (xr_feats, xr_ms) = time_ms(|| xr.explain(&x));
    fig1.row(vec![
        "Xreason".into(),
        fmt_ms(xr_ms),
        xr_feats.len().to_string(),
        schema.render_conjunction(&x, &xr_feats),
    ]);

    // Anchor (heuristic).
    let anchor = Anchor::new(
        &prep.train,
        AnchorParams {
            seed: cfg.seed,
            ..Default::default()
        },
    );
    let (an_feats, an_ms) = time_ms(|| anchor.explain(&prep.model, &x));
    fig1.row(vec![
        "Anchor".into(),
        fmt_ms(an_ms),
        an_feats.len().to_string(),
        schema.render_conjunction(&x, &an_feats),
    ]);

    // CCE (relative key over the inference context).
    let (key, cce_ms) = time_ms(|| Srk::new(Alpha::ONE).explain(&prep.ctx, x0));
    let key = key.expect("Loan case study target must be explainable");
    fig1.row(vec![
        "CCE".into(),
        fmt_ms(cce_ms),
        key.succinctness().to_string(),
        key.render(schema, &x, &outcome),
    ]);

    // Conformity witness: does an inference instance violate Anchor's rule
    // (the paper's x1)?
    let mut witness = Table::new(
        "Anchor conformity counterexample (Fig 1's x1)",
        &["found", "instance", "prediction"],
    );
    let violator = (0..prep.ctx.len()).find(|&t| {
        t != x0
            && prep.ctx.instance(t).agrees_on(&x, &an_feats)
            && prep.ctx.prediction(t) != prep.ctx.prediction(x0)
    });
    match violator {
        Some(t) => {
            witness.row(vec![
                "yes".into(),
                schema.render_conjunction(prep.ctx.instance(t), &an_feats),
                prep.infer.label_name(prep.ctx.prediction(t)),
            ]);
        }
        None => {
            witness.row(vec!["no (this run)".into(), "-".into(), "-".into()]);
        }
    }

    // Table 3: feature-importance explanations for x0.
    let mut header_strings: Vec<String> = vec!["method".into()];
    header_strings.extend(schema.features().iter().map(|f| f.name.clone()));
    header_strings.push("top-2 derived".into());
    let headers: Vec<&str> = header_strings.iter().map(String::as_str).collect();
    let mut t3 = Table::new("Table 3: feature importance explanations for x0", &headers);
    let lime = Lime::new(
        &prep.train,
        LimeParams {
            seed: cfg.seed,
            ..Default::default()
        },
    );
    let shap = KernelShap::new(
        &prep.train,
        ShapParams {
            seed: cfg.seed,
            ..Default::default()
        },
    );
    let gam = Gam::fit(&prep.model, &prep.train, GamParams::default());
    for (name, scores) in [
        ("LIME", lime.importance(&prep.model, &x)),
        ("SHAP", shap.importance(&prep.model, &x)),
        ("GAM", gam.importance(&prep.model, &x)),
    ] {
        let mut row = vec![name.to_string()];
        row.extend(scores.iter().map(|s| format!("{s:.2}")));
        let top2 = top_k_features(&scores, 2);
        row.push(
            top2.iter()
                .map(|&f| schema.feature(f).name.clone())
                .collect::<Vec<_>>()
                .join("+"),
        );
        t3.row(row);
    }

    // IDS pattern-level explanations: bounded and unbounded.
    let mut ids_table = Table::new(
        "IDS pattern-level explanations (bounded vs unbounded)",
        &["run", "time (ms)", "#rules", "covers x0?", "first rules"],
    );
    let (bounded, b_ms) = time_ms(|| Ids::new(IdsParams::default()).fit(&prep.model, &prep.infer));
    let (unbounded, u_ms) = time_ms(|| {
        Ids::new(IdsParams {
            max_rules: usize::MAX,
            min_support: 3,
            min_precision: 0.75,
            ..Default::default()
        })
        .fit(&prep.model, &prep.infer)
    });
    for (name, rs, ms) in [
        ("8-rule bound", &bounded, b_ms),
        ("unbounded", &unbounded, u_ms),
    ] {
        let covers = rs.covering(&x).is_some();
        let sample = rs
            .rules()
            .iter()
            .take(2)
            .map(|r| r.render(schema, &prep.infer.label_name(r.label)))
            .collect::<Vec<_>>()
            .join(" ; ");
        ids_table.row(vec![
            name.into(),
            fmt_ms(ms),
            rs.len().to_string(),
            covers.to_string(),
            sample,
        ]);
    }

    vec![fig1, witness, t3, ids_table]
}
