//! §7.5 — explaining entity-matching decisions: Fig. 3n/3o
//! (conformity/precision), Fig. 3p (faithfulness) and the efficiency
//! comparison against the specialized CERTA explainer.
//!
//! The matcher is the Ditto stand-in (an MLP): Xreason cannot explain it
//! at all — only CCE, Anchor and CERTA compete here, exactly as in the
//! paper.

use cce_baselines::{top_k_features, Anchor, AnchorParams, Certa, CertaParams};
use cce_core::{Alpha, Srk};
use cce_dataset::synth::EM_DATASETS;
use cce_metrics::report::{fmt_ms, fmt_pct};
use cce_metrics::{conformity, faithfulness, mean_precision, Explained, FaithfulnessParams, Table};

use crate::setup::{prepare_em, sample_targets, ExpConfig};

/// Runs the EM evaluation.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut f3n = Table::new(
        "Fig 3n: conformity (%) on entity matching",
        &["method", "A-G", "D-A", "D-G", "W-A"],
    );
    let mut f3o = Table::new(
        "Fig 3o: precision (%) on entity matching",
        &["method", "A-G", "D-A", "D-G", "W-A"],
    );
    let mut f3p = Table::new(
        "Fig 3p: faithfulness on entity matching (lower is better)",
        &["method", "A-G", "D-A", "D-G", "W-A"],
    );
    let mut timing = Table::new(
        "§7.5 efficiency: avg time (ms) per EM explanation",
        &["method", "A-G", "D-A", "D-G", "W-A"],
    );

    let methods = ["CCE", "Anchor", "CERTA"];
    let mut conf = vec![Vec::new(); 3];
    let mut prec = vec![Vec::new(); 3];
    let mut faith = vec![Vec::new(); 3];
    let mut times = vec![Vec::new(); 3];

    for name in EM_DATASETS {
        let prep = prepare_em(name, cfg);
        let targets = sample_targets(prep.ctx.len(), cfg.targets, cfg.seed);
        let infer = prep.all.select(&prep.infer_rows);
        let train = prep.all.select(&prep.train_rows);

        // CCE.
        let srk = Srk::new(Alpha::ONE);
        let start = std::time::Instant::now();
        let mut cce_expl: Vec<Explained> = Vec::new();
        let mut sizes: Vec<usize> = Vec::new();
        for &t in &targets {
            match srk.explain(&prep.ctx, t) {
                Ok(k) => {
                    sizes.push(k.succinctness().max(1));
                    cce_expl.push(Explained::new(t, k.features().to_vec()));
                }
                Err(_) => sizes.push(1),
            }
        }
        let cce_ms = start.elapsed().as_secs_f64() * 1e3 / targets.len().max(1) as f64;

        // Anchor (size-matched).
        let anchor = Anchor::new(
            &train,
            AnchorParams {
                seed: cfg.seed,
                ..Default::default()
            },
        );
        let start = std::time::Instant::now();
        let an_expl: Vec<Explained> = targets
            .iter()
            .zip(&sizes)
            .map(|(&t, &k)| {
                Explained::new(
                    t,
                    anchor.explain_with_size(&prep.matcher, infer.instance(t), k),
                )
            })
            .collect();
        let an_ms = start.elapsed().as_secs_f64() * 1e3 / targets.len().max(1) as f64;

        // CERTA (size-matched via top-k of its saliency).
        let certa = Certa::new(&prep.em, prep.all.schema_arc(), CertaParams::default());
        let start = std::time::Instant::now();
        let ce_expl: Vec<Explained> = targets
            .iter()
            .zip(&sizes)
            .map(|(&t, &k)| {
                let pair_idx = prep.infer_rows[t];
                let scores = certa.importance(&prep.matcher, pair_idx);
                Explained::new(t, top_k_features(&scores, k))
            })
            .collect();
        let ce_ms = start.elapsed().as_secs_f64() * 1e3 / targets.len().max(1) as f64;

        let fparams = FaithfulnessParams {
            seed: cfg.seed,
            ..Default::default()
        };
        for (mi, (expl, ms)) in [(cce_expl, cce_ms), (an_expl, an_ms), (ce_expl, ce_ms)]
            .into_iter()
            .enumerate()
        {
            conf[mi].push(fmt_pct(conformity(&prep.ctx, &expl)));
            prec[mi].push(fmt_pct(mean_precision(&prep.ctx, &expl)));
            let items: Vec<_> = expl
                .iter()
                .map(|e| (infer.instance(e.target).clone(), e.features.clone()))
                .collect();
            faith[mi].push(format!(
                "{:.3}",
                faithfulness(&prep.matcher, &train, &items, fparams)
            ));
            times[mi].push(fmt_ms(ms));
        }
    }

    for (mi, m) in methods.iter().enumerate() {
        let with_name = |cols: &Vec<Vec<String>>| {
            let mut row = vec![m.to_string()];
            row.extend(cols[mi].clone());
            row
        };
        f3n.row(with_name(&conf));
        f3o.row(with_name(&prec));
        f3p.row(with_name(&faith));
        timing.row(with_name(&times));
    }

    vec![f3n, f3o, f3p, timing]
}
