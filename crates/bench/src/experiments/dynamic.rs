//! Appendix B Exp-4 — explaining *dynamic* models that evolve during
//! serving without notifying the client (Fig. 4f/4g/4h).
//!
//! Protocol: each dataset is cut into 5 equal phases, each with its own
//! model. Explanation methods are *oblivious* to the change: the
//! model-access baselines keep querying the phase-1 model, while CCE
//! tracks a sliding-window context of fresh `(instance, prediction)`
//! pairs. Quality is measured against the current phase's reference
//! context (SRK with full knowledge of the phase).

use cce_core::{Alpha, Context, ResolutionPolicy, SlidingWindow, Srk};
use cce_dataset::synth::GENERAL_DATASETS;
use cce_metrics::report::fmt_pct;
use cce_metrics::{conformity, recall_pair, Explained, Table};
use cce_model::{Gbdt, GbdtParams, Model};

use crate::methods;
use crate::setup::{prepare, sample_targets, ExpConfig};

/// Number of model phases.
pub const PHASES: usize = 5;

/// ΔI values swept for Fig. 4h, as fractions of the window capacity.
pub const DELTA_FRACS: [f64; 3] = [0.1, 0.25, 0.5];

/// Runs the dynamic-model evaluation.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut f4f = Table::new(
        "Fig 4f: recall vs phase-local reference (dynamic models)",
        &["method", "Adult", "German", "Compas", "Loan", "Recid"],
    );
    let mut f4g = Table::new(
        "Fig 4g: conformity under oblivious model change",
        &["method", "Adult", "German", "Compas", "Loan", "Recid"],
    );
    let mut f4h = Table::new(
        "Fig 4h: CCE conformity vs sliding step ΔI (fraction of window)",
        &["dataset", "ΔI=10%", "ΔI=25%", "ΔI=50%"],
    );

    let mut cce_recall_row = vec!["CCE".to_string()];
    let mut xr_recall_row = vec!["Xreason(stale)".to_string()];
    let mut conf_rows: Vec<Vec<String>> = vec![
        vec!["CCE".into()],
        vec!["LIME(stale)".into()],
        vec!["Anchor(stale)".into()],
        vec!["Xreason(stale)".into()],
    ];

    for name in GENERAL_DATASETS {
        // Phase setup: split both train and infer into 5 parts; one model
        // per phase.
        let base = prepare(name, cfg);
        let train_phases = base.train.chunks(PHASES);
        let infer_phases = base.infer.chunks(PHASES);
        let models: Vec<Gbdt> = train_phases
            .iter()
            .map(|tp| Gbdt::train(tp, &GbdtParams::explainable(), cfg.seed))
            .collect();

        // The stale explainers keep using the phase-1 model.
        let stale = &models[0];
        let stale_prep = crate::setup::Prepared {
            name: base.name.clone(),
            train: train_phases[0].clone(),
            infer: base.infer.clone(),
            model: stale.clone(),
            ctx: base.ctx.clone(),
        };

        // CCE: sliding window over the evolving prediction stream.
        let capacity = (base.infer.len() / PHASES).max(20);
        let mut window = SlidingWindow::new(
            base.infer.schema_arc(),
            capacity,
            (capacity / 4).max(1),
            Alpha::ONE,
            ResolutionPolicy::LastWins,
        );

        let per_phase = (cfg.targets / PHASES).max(2);
        let (mut rec_cce, mut rec_xr, mut pairs) = (0.0, 0.0, 0usize);
        let mut confs = [(0.0, 0usize); 4]; // CCE, LIME, Anchor, Xreason

        for (phase, infer_p) in infer_phases.iter().enumerate() {
            let model = &models[phase];
            // Stream the phase through the window.
            let preds = model.predict_all(infer_p.instances());
            for (x, p) in infer_p.instances().iter().zip(&preds) {
                window.push(x.clone(), *p).expect("schema matches");
            }
            // Phase-local reference context and explanations.
            let ref_ctx = Context::from_model(infer_p, model);
            let targets = sample_targets(infer_p.len(), per_phase, cfg.seed ^ phase as u64);
            let srk = Srk::new(Alpha::ONE);

            // Stale baselines operate on the phase-1 model but are judged
            // against the current phase's behavior.
            let sizes: Vec<usize> = targets
                .iter()
                .map(|&t| {
                    srk.explain(&ref_ctx, t)
                        .map(|k| k.succinctness().max(1))
                        .unwrap_or(1)
                })
                .collect();
            let phase_prep = crate::setup::Prepared {
                name: base.name.clone(),
                train: stale_prep.train.clone(),
                infer: infer_p.clone(),
                model: stale.clone(),
                ctx: ref_ctx.clone(),
            };
            let lime = methods::run_lime(&phase_prep, &targets, &sizes, cfg.seed);
            let anchor = methods::run_anchor(&phase_prep, &targets, &sizes, cfg.seed);
            let xr = methods::run_xreason(&phase_prep, &targets);

            // CCE explains from its window (no model access).
            let mut cce_expl: Vec<Explained> = Vec::new();
            for &t in &targets {
                let x = infer_p.instance(t);
                if let Ok(k) = window.explain(x, model.predict(x)) {
                    cce_expl.push(Explained::new(t, k.features().to_vec()));
                }
            }

            for (ci, expl) in [
                (&cce_expl, 0usize),
                (&lime.explained, 1),
                (&anchor.explained, 2),
                (&xr.explained, 3),
            ]
            .into_iter()
            .map(|(e, i)| (i, e))
            {
                confs[ci].0 += conformity(&ref_ctx, expl);
                confs[ci].1 += 1;
            }

            // Recall against the phase reference (SRK on the full phase
            // context), pairing CCE and stale Xreason.
            for e in &cce_expl {
                let Ok(reference) = srk.explain(&ref_ctx, e.target) else {
                    continue;
                };
                let (r_c, _) = recall_pair(&ref_ctx, e.target, &e.features, reference.features());
                rec_cce += r_c;
                if let Some(x) = xr.explained.iter().find(|x| x.target == e.target) {
                    let (r_x, _) =
                        recall_pair(&ref_ctx, e.target, &x.features, reference.features());
                    rec_xr += r_x;
                }
                pairs += 1;
            }
        }

        let pairs = pairs.max(1) as f64;
        cce_recall_row.push(fmt_pct(rec_cce / pairs));
        xr_recall_row.push(fmt_pct(rec_xr / pairs));
        for (ci, row) in conf_rows.iter_mut().enumerate() {
            row.push(fmt_pct(confs[ci].0 / confs[ci].1.max(1) as f64));
        }

        // Fig 4h: ΔI sweep — CCE conformity with different sliding steps.
        let mut h_row = vec![name.to_string()];
        for &dfrac in &DELTA_FRACS {
            let delta = ((capacity as f64 * dfrac) as usize).max(1);
            let mut w = SlidingWindow::new(
                base.infer.schema_arc(),
                capacity,
                delta,
                Alpha::ONE,
                ResolutionPolicy::LastWins,
            );
            let (mut conf_sum, mut n) = (0.0, 0usize);
            for (phase, infer_p) in infer_phases.iter().enumerate() {
                let model = &models[phase];
                for x in infer_p.instances() {
                    w.push(x.clone(), model.predict(x)).expect("schema matches");
                }
                let ref_ctx = Context::from_model(infer_p, model);
                for &t in sample_targets(infer_p.len(), 4, cfg.seed ^ phase as u64).iter() {
                    let x = infer_p.instance(t);
                    if let Ok(k) = w.explain(x, model.predict(x)) {
                        conf_sum +=
                            conformity(&ref_ctx, &[Explained::new(t, k.features().to_vec())]);
                        n += 1;
                    }
                }
            }
            h_row.push(fmt_pct(conf_sum / n.max(1) as f64));
        }
        f4h.row(h_row);
    }

    f4f.row(cce_recall_row);
    f4f.row(xr_recall_row);
    for row in conf_rows {
        f4g.row(row);
    }
    vec![f4f, f4g, f4h]
}
