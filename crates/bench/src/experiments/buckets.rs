//! Fig. 3h/3i (`#-bucket` impact on Loan) and Fig. 4d (faithfulness on
//! Adult): how the discretization granularity of numeric features affects
//! explanation quality.

use cce_core::Alpha;
use cce_dataset::BinSpec;
use cce_metrics::report::fmt_pct;
use cce_metrics::{
    conformity, faithfulness, mean_succinctness, recall_pair, FaithfulnessParams, Table,
};

use crate::methods::{self, faithfulness_items};
use crate::setup::{prepare_with_spec, sample_targets, ExpConfig};

/// Bucket counts swept (the paper varies 10 to 20).
pub const BUCKETS: [usize; 6] = [10, 12, 14, 16, 18, 20];

/// Runs the `#-bucket` sweeps.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let headers: Vec<String> = std::iter::once("method".to_string())
        .chain(BUCKETS.iter().map(|b| format!("#{b}")))
        .collect();
    let hdr: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut f3h = Table::new("Fig 3h: conformity vs #-bucket of LoanAmount (Loan)", &hdr);
    let mut f3i_recall = Table::new("Fig 3i (recall): CCE vs Xreason vs #-bucket (Loan)", &hdr);
    let mut f3i_succ = Table::new(
        "Fig 3i (succinctness): CCE vs Xreason vs #-bucket (Loan)",
        &hdr,
    );
    let mut f4d = Table::new("Fig 4d: faithfulness vs #-bucket (Adult)", &hdr);

    // Per-method accumulators across bucket counts.
    let methods_order = ["CCE", "LIME", "SHAP", "Anchor", "GAM"];
    let mut conf_cols: Vec<Vec<String>> = vec![Vec::new(); methods_order.len()];
    let mut faith_cols: Vec<Vec<String>> = vec![Vec::new(); methods_order.len()];
    let mut recall_cols: Vec<Vec<String>> = vec![Vec::new(); 2];
    let mut succ_cols: Vec<Vec<String>> = vec![Vec::new(); 2];

    for &b in &BUCKETS {
        // Fig 3h/3i: Loan with the LoanAmount override.
        let spec = BinSpec::uniform(cfg.buckets)
            .with_strategy(cce_dataset::BinningStrategy::Quantile)
            .with_override("LoanAmount", b);
        let prep = prepare_with_spec("Loan", cfg, &spec);
        let targets = sample_targets(prep.ctx.len(), cfg.targets, cfg.seed);
        let (cce, sizes) = methods::run_cce(&prep, &targets, Alpha::ONE);
        let runs = [
            cce,
            methods::run_lime(&prep, &targets, &sizes, cfg.seed),
            methods::run_shap(&prep, &targets, &sizes, cfg.seed),
            methods::run_anchor(&prep, &targets, &sizes, cfg.seed),
            methods::run_gam(&prep, &targets, &sizes),
        ];
        for (col, run) in conf_cols.iter_mut().zip(&runs) {
            col.push(fmt_pct(conformity(&prep.ctx, &run.explained)));
        }
        let xr = methods::run_xreason(&prep, &targets);
        let (mut rc, mut rx, mut n) = (0.0, 0.0, 0usize);
        for c in &runs[0].explained {
            if let Some(x) = xr.explained.iter().find(|x| x.target == c.target) {
                let (a, bb) = recall_pair(&prep.ctx, c.target, &c.features, &x.features);
                rc += a;
                rx += bb;
                n += 1;
            }
        }
        let n = n.max(1) as f64;
        recall_cols[0].push(fmt_pct(rc / n));
        recall_cols[1].push(fmt_pct(rx / n));
        succ_cols[0].push(format!("{:.2}", mean_succinctness(&runs[0].explained)));
        succ_cols[1].push(format!("{:.2}", mean_succinctness(&xr.explained)));

        // Fig 4d: Adult with all numeric features at b buckets.
        let spec_a = BinSpec::uniform(b).with_strategy(cce_dataset::BinningStrategy::Quantile);
        let prep_a = prepare_with_spec("Adult", cfg, &spec_a);
        let targets_a = sample_targets(prep_a.ctx.len(), cfg.targets, cfg.seed);
        let (cce_a, sizes_a) = methods::run_cce(&prep_a, &targets_a, Alpha::ONE);
        let runs_a = [
            cce_a,
            methods::run_lime(&prep_a, &targets_a, &sizes_a, cfg.seed),
            methods::run_shap(&prep_a, &targets_a, &sizes_a, cfg.seed),
            methods::run_anchor(&prep_a, &targets_a, &sizes_a, cfg.seed),
            methods::run_gam(&prep_a, &targets_a, &sizes_a),
        ];
        let fparams = FaithfulnessParams {
            seed: cfg.seed,
            ..Default::default()
        };
        for (col, run) in faith_cols.iter_mut().zip(&runs_a) {
            let f = faithfulness(
                &prep_a.model,
                &prep_a.train,
                &faithfulness_items(&prep_a, run),
                fparams,
            );
            col.push(format!("{f:.3}"));
        }
    }

    for (mi, m) in methods_order.iter().enumerate() {
        let mut row = vec![m.to_string()];
        row.extend(conf_cols[mi].clone());
        f3h.row(row);
        let mut row = vec![m.to_string()];
        row.extend(faith_cols[mi].clone());
        f4d.row(row);
    }
    for (i, m) in ["CCE", "Xreason"].iter().enumerate() {
        let mut row = vec![m.to_string()];
        row.extend(recall_cols[i].clone());
        f3i_recall.row(row);
        let mut row = vec![m.to_string()];
        row.extend(succ_cols[i].clone());
        f3i_succ.row(row);
    }

    vec![f3h, f3i_recall, f3i_succ, f4d]
}
