//! Fig. 3l/3m — monitoring model accuracy dips via key succinctness over
//! base vs noise versions of Adult.

use cce_core::{Alpha, DriftMonitor};
use cce_dataset::synth::noise;
use cce_metrics::Table;
use cce_model::Model;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::setup::{prepare, ExpConfig};

/// Stream progress checkpoints (I%).
pub const CHECKPOINTS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

/// Runs the monitoring experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let prep = prepare("Adult", cfg);

    let make_stream = |noisy: bool| {
        let mut infer = prep.infer.clone();
        if noisy {
            // Noise begins at 60% of the stream (the paper's setup).
            noise::randomize_tail(
                &mut infer,
                0.6,
                &mut StdRng::seed_from_u64(cfg.seed ^ 0x90153),
            );
        }
        let preds = prep.model.predict_all(infer.instances());
        (infer, preds)
    };

    let mut f3l = Table::new(
        "Fig 3l: mean key succinctness vs I% (Adult, base vs noise)",
        &["version", "I=20%", "I=40%", "I=60%", "I=80%", "I=100%"],
    );
    let mut f3m = Table::new(
        "Fig 3m: model accuracy vs I% (Adult, base vs noise)",
        &["version", "I=20%", "I=40%", "I=60%", "I=80%", "I=100%"],
    );

    for noisy in [false, true] {
        let (infer, preds) = make_stream(noisy);
        let n = infer.len();
        let mut m = DriftMonitor::new(Alpha::ONE, 12, (n / 50).max(1), cfg.seed)
            .expect("valid monitor config");
        let mut succ_row = vec![if noisy { "noise" } else { "base" }.to_string()];
        let mut acc_row = succ_row.clone();
        let mut next_cp = 0usize;
        let mut correct = 0usize;
        for (i, (x, &p)) in infer.instances().iter().zip(&preds).enumerate() {
            m.observe(x.clone(), p);
            // Accuracy vs recorded ground-truth labels: the noise tail's
            // instances no longer match their labels, producing the dip.
            correct += usize::from(p == infer.label(i));
            while next_cp < CHECKPOINTS.len() && (i + 1) as f64 >= CHECKPOINTS[next_cp] * n as f64 {
                succ_row.push(format!("{:.2}", m.mean_succinctness()));
                acc_row.push(format!("{:.1}%", correct as f64 / (i + 1) as f64 * 100.0));
                next_cp += 1;
            }
        }
        while succ_row.len() < CHECKPOINTS.len() + 1 {
            succ_row.push("-".into());
            acc_row.push("-".into());
        }
        f3l.row(succ_row);
        f3m.row(acc_row);
    }

    vec![f3l, f3m]
}
