//! Multi-seed robustness check (§7.1: "Each test was run three times;
//! the average is reported").
//!
//! Re-runs the headline measures over three seeds — fresh data draws,
//! fresh splits, fresh sampling in every stochastic method — and reports
//! mean ± half-range. Tight ranges mean the qualitative conclusions of
//! `exp_general` do not hinge on one lucky seed.

use cce_core::Alpha;
use cce_dataset::synth::GENERAL_DATASETS;
use cce_metrics::{conformity, mean_succinctness, recall_pair, Table};

use crate::methods;
use crate::setup::{prepare, sample_targets, ExpConfig};

/// Seeds used (the paper's three runs).
pub const SEEDS: [u64; 3] = [42, 43, 44];

struct Agg {
    vals: Vec<f64>,
}

impl Agg {
    fn new() -> Self {
        Self { vals: Vec::new() }
    }
    fn push(&mut self, v: f64) {
        self.vals.push(v);
    }
    fn render(&self, pct: bool) -> String {
        let n = self.vals.len().max(1) as f64;
        let mean = self.vals.iter().sum::<f64>() / n;
        let lo = self.vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = self.vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let half = (hi - lo) / 2.0;
        if pct {
            format!("{:.1}% ± {:.1}", mean * 100.0, half * 100.0)
        } else {
            format!("{mean:.2} ± {half:.2}")
        }
    }
}

/// Runs the three-seed robustness sweep.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut t = Table::new(
        "Robustness over 3 seeds (mean ± half-range)",
        &[
            "dataset",
            "CCE conformity",
            "Anchor conformity",
            "CCE succinctness",
            "Xreason succinctness",
            "CCE recall",
            "Xreason recall",
        ],
    );
    for name in GENERAL_DATASETS {
        let mut cce_conf = Agg::new();
        let mut an_conf = Agg::new();
        let mut cce_succ = Agg::new();
        let mut xr_succ = Agg::new();
        let mut cce_rec = Agg::new();
        let mut xr_rec = Agg::new();
        for &seed in &SEEDS {
            let cfg_s = ExpConfig {
                seed,
                targets: cfg.targets.min(40),
                ..*cfg
            };
            let prep = prepare(name, &cfg_s);
            let targets = sample_targets(prep.ctx.len(), cfg_s.targets, seed);
            let (cce, sizes) = methods::run_cce(&prep, &targets, Alpha::ONE);
            let anchor = methods::run_anchor(&prep, &targets, &sizes, seed);
            let xr = methods::run_xreason(&prep, &targets);
            cce_conf.push(conformity(&prep.ctx, &cce.explained));
            an_conf.push(conformity(&prep.ctx, &anchor.explained));
            cce_succ.push(mean_succinctness(&cce.explained));
            xr_succ.push(mean_succinctness(&xr.explained));
            let (mut rc, mut rx, mut n) = (0.0, 0.0, 0usize);
            for c in &cce.explained {
                if let Some(x) = xr.explained.iter().find(|x| x.target == c.target) {
                    let (a, b) = recall_pair(&prep.ctx, c.target, &c.features, &x.features);
                    rc += a;
                    rx += b;
                    n += 1;
                }
            }
            cce_rec.push(rc / n.max(1) as f64);
            xr_rec.push(rx / n.max(1) as f64);
        }
        t.row(vec![
            name.to_string(),
            cce_conf.render(true),
            an_conf.render(true),
            cce_succ.render(false),
            xr_succ.render(false),
            cce_rec.render(true),
            xr_rec.render(true),
        ]);
    }
    vec![t]
}
