//! Beyond the paper (§8 future work): context-relative pattern summaries
//! vs the heuristic IDS baseline.
//!
//! For each dataset we summarize the inference context with (a) IDS, the
//! paper's global pattern baseline, and (b) `cce_core::patterns`, whose
//! rules are α-conformant relative keys. We measure rule count, coverage,
//! the *empirical precision* of each rule set against the recorded
//! predictions, and time — including whether each method queries the
//! model (IDS does; relative summaries never do).

use cce_baselines::{Ids, IdsParams};
use cce_core::{patterns, SummaryParams};
use cce_dataset::synth::GENERAL_DATASETS;
use cce_metrics::report::{fmt_ms, fmt_pct};
use cce_metrics::Table;

use crate::setup::{prepare, ExpConfig};

/// Runs the pattern-summary comparison.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut t = Table::new(
        "§8 future work: relative pattern summaries vs IDS",
        &[
            "dataset",
            "method",
            "rules",
            "coverage",
            "rule precision",
            "time (ms)",
            "model queries",
        ],
    );
    for name in GENERAL_DATASETS {
        let prep = prepare(name, cfg);
        let preds = prep.ctx.predictions();

        // IDS over the inference set (queries the model once per row).
        let start = std::time::Instant::now();
        let ids = Ids::new(IdsParams::default()).fit(&prep.model, &prep.infer);
        let ids_ms = start.elapsed().as_secs_f64() * 1e3;
        let (mut covered, mut correct) = (0usize, 0usize);
        for (r, x) in prep.infer.instances().iter().enumerate() {
            if let Some(rule) = ids.covering(x) {
                covered += 1;
                correct += usize::from(rule.label == preds[r]);
            }
        }
        t.row(vec![
            name.to_string(),
            "IDS".into(),
            ids.len().to_string(),
            fmt_pct(covered as f64 / prep.infer.len() as f64),
            fmt_pct(correct as f64 / covered.max(1) as f64),
            fmt_ms(ids_ms),
            prep.infer.len().to_string(),
        ]);

        // Relative summary over the same context (zero queries).
        let start = std::time::Instant::now();
        let summary = patterns::summarize(
            &prep.ctx,
            SummaryParams {
                max_patterns: 16,
                coverage_target: 0.95,
                ..Default::default()
            },
        )
        .expect("non-empty context");
        let rs_ms = start.elapsed().as_secs_f64() * 1e3;
        let (mut covered, mut correct) = (0usize, 0usize);
        for (r, x) in prep.ctx.instances().iter().enumerate() {
            if let Some(p) = summary.covering(x) {
                covered += 1;
                correct += usize::from(p.prediction == preds[r]);
            }
        }
        t.row(vec![
            name.to_string(),
            "RelativeSummary".into(),
            summary.len().to_string(),
            fmt_pct(covered as f64 / prep.ctx.len() as f64),
            fmt_pct(correct as f64 / covered.max(1) as f64),
            fmt_ms(rs_ms),
            "0".into(),
        ]);
    }
    vec![t]
}
