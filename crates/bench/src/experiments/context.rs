//! Fig. 3j/3k and Fig. 4e — impact of the context size |I| on explanation
//! quality, in batch (SRK) and online (OSRK/SSRK) modes over Adult.

use cce_core::{Alpha, OsrkMonitor, Srk, SsrkMonitor};
use cce_metrics::{faithfulness, mean_succinctness, Explained, FaithfulnessParams, Table};

use crate::methods::faithfulness_items;
use crate::methods::MethodRun;
use crate::setup::{prepare, sample_targets, ExpConfig};

/// Context fractions swept (50% to 100% of the inference set).
pub const FRACTIONS: [f64; 6] = [0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Runs the context-size sweep.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let prep = prepare("Adult", cfg);
    let fparams = FaithfulnessParams {
        seed: cfg.seed,
        ..Default::default()
    };

    let headers: Vec<String> = std::iter::once("measure".to_string())
        .chain(FRACTIONS.iter().map(|f| format!("{:.0}%", f * 100.0)))
        .collect();
    let hdr: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut f3j = Table::new(
        "Fig 3j: CCE (SRK) quality vs context size |I| (Adult)",
        &hdr,
    );
    let mut f3k = Table::new("Fig 3k: OSRK quality vs context size |I| (Adult)", &hdr);
    let mut f4e = Table::new("Fig 4e: SSRK quality vs context size |I| (Adult)", &hdr);

    let mut rows: Vec<Vec<String>> = vec![vec!["faithfulness".into()], vec!["succinctness".into()]];
    let mut rows_o: Vec<Vec<String>> = rows.clone();
    let mut rows_s: Vec<Vec<String>> = rows.clone();

    for &frac in &FRACTIONS {
        let sub = prep.infer.head((prep.infer.len() as f64 * frac) as usize);
        let ctx = cce_core::Context::from_model(&sub, &prep.model);
        let targets = sample_targets(ctx.len(), cfg.targets, cfg.seed);

        // Batch (SRK).
        let srk = Srk::new(Alpha::ONE);
        let explained: Vec<Explained> = targets
            .iter()
            .filter_map(|&t| {
                srk.explain(&ctx, t)
                    .ok()
                    .map(|k| Explained::new(t, k.features().to_vec()))
            })
            .collect();
        let run = MethodRun {
            name: "CCE",
            explained,
            avg_ms: 0.0,
        };
        let sub_prep = crate::setup::Prepared {
            name: prep.name.clone(),
            train: prep.train.clone(),
            infer: sub.clone(),
            model: prep.model.clone(),
            ctx: ctx.clone(),
        };
        let f = faithfulness(
            &prep.model,
            &prep.train,
            &faithfulness_items(&sub_prep, &run),
            fparams,
        );
        rows[0].push(format!("{f:.3}"));
        rows[1].push(format!("{:.2}", mean_succinctness(&run.explained)));

        // Online monitors over the same streamed sub-context.
        for (is_osrk, rows_x) in [(true, &mut rows_o), (false, &mut rows_s)] {
            let universe: Vec<_> = ctx
                .instances()
                .iter()
                .cloned()
                .zip(ctx.predictions().iter().copied())
                .collect();
            let mut explained = Vec::new();
            for &t0 in targets.iter().take(cfg.targets.min(10)) {
                let x0 = ctx.instance(t0).clone();
                let p0 = ctx.prediction(t0);
                let feats: Vec<usize> = if is_osrk {
                    let mut m = OsrkMonitor::new(x0, p0, Alpha::ONE, cfg.seed);
                    for (i, (x, p)) in universe.iter().enumerate() {
                        if i != t0 {
                            let _ = m.observe(x.clone(), *p);
                        }
                    }
                    m.key().to_vec()
                } else {
                    let mut m = SsrkMonitor::new(x0, p0, Alpha::ONE, &universe);
                    for (i, (x, p)) in universe.iter().enumerate() {
                        if i != t0 {
                            let _ = m.observe(x.clone(), *p);
                        }
                    }
                    m.key().to_vec()
                };
                explained.push(Explained::new(t0, feats));
            }
            let run = MethodRun {
                name: "online",
                explained,
                avg_ms: 0.0,
            };
            let f = faithfulness(
                &prep.model,
                &prep.train,
                &faithfulness_items(&sub_prep, &run),
                fparams,
            );
            rows_x[0].push(format!("{f:.3}"));
            rows_x[1].push(format!("{:.2}", mean_succinctness(&run.explained)));
        }
    }

    for r in rows {
        f3j.row(r);
    }
    for r in rows_o {
        f3k.row(r);
    }
    for r in rows_s {
        f4e.row(r);
    }
    vec![f3j, f3k, f4e]
}
