//! Fig. 4a/4b/4c — achieved precision of SRK, OSRK and SSRK as the
//! conformity bound α is relaxed from 1 to 0.9. The paper's point: actual
//! precision stays far above the theoretical floor α.

use cce_core::{Alpha, OsrkMonitor, Srk, SsrkMonitor};
use cce_dataset::synth::GENERAL_DATASETS;
use cce_metrics::report::fmt_pct;
use cce_metrics::Table;

use crate::setup::{prepare, sample_targets, ExpConfig};

/// α values swept.
pub const ALPHAS: [f64; 3] = [1.0, 0.98, 0.9];

/// Runs the precision-vs-α sweep for all three algorithms.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let headers = ["dataset", "α=1", "α=0.98", "α=0.9"];
    let mut f4a = Table::new("Fig 4a: achieved precision of SRK vs α", &headers);
    let mut f4b = Table::new("Fig 4b: achieved precision of OSRK vs α", &headers);
    let mut f4c = Table::new("Fig 4c: achieved precision of SSRK vs α", &headers);

    for name in GENERAL_DATASETS {
        let prep = prepare(name, cfg);
        let targets = sample_targets(prep.ctx.len(), cfg.targets.min(12), cfg.seed);
        let universe: Vec<_> = prep
            .ctx
            .instances()
            .iter()
            .cloned()
            .zip(prep.ctx.predictions().iter().copied())
            .collect();

        let mut rows = [
            vec![name.to_string()],
            vec![name.to_string()],
            vec![name.to_string()],
        ];
        for &a in &ALPHAS {
            let alpha = Alpha::new(a).expect("valid alpha");
            // SRK.
            let srk = Srk::new(alpha);
            let (mut p_srk, mut n_srk) = (0.0, 0usize);
            for &t in &targets {
                if let Ok(k) = srk.explain(&prep.ctx, t) {
                    p_srk += prep.ctx.max_alpha(k.features(), t);
                    n_srk += 1;
                }
            }
            rows[0].push(fmt_pct(p_srk / n_srk.max(1) as f64));

            // Online monitors: stream the whole context, then measure the
            // final key's precision over it.
            let (mut p_o, mut p_s, mut n_on) = (0.0, 0.0, 0usize);
            for &t0 in targets.iter().take(6) {
                let x0 = prep.ctx.instance(t0).clone();
                let p0 = prep.ctx.prediction(t0);
                let mut osrk = OsrkMonitor::new(x0.clone(), p0, alpha, cfg.seed);
                let mut ssrk = SsrkMonitor::new(x0, p0, alpha, &universe);
                for (i, (x, p)) in universe.iter().enumerate() {
                    if i == t0 {
                        continue;
                    }
                    let _ = osrk.observe(x.clone(), *p);
                    let _ = ssrk.observe(x.clone(), *p);
                }
                p_o += prep.ctx.max_alpha(osrk.key(), t0);
                p_s += prep.ctx.max_alpha(ssrk.key(), t0);
                n_on += 1;
            }
            rows[1].push(fmt_pct(p_o / n_on.max(1) as f64));
            rows[2].push(fmt_pct(p_s / n_on.max(1) as f64));
        }
        f4a.row(rows[0].clone());
        f4b.row(rows[1].clone());
        f4c.row(rows[2].clone());
    }
    vec![f4a, f4b, f4c]
}
