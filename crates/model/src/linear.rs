//! One-hot logistic regression.
//!
//! A simple linear baseline model: every (feature, value) pair gets a
//! weight; training is mini-batch-free SGD with L2 regularization. Used in
//! tests and as an alternative blackbox model for CCE (relative keys are
//! model-agnostic — §3.1 benefit (a)).

use cce_dataset::{Dataset, Instance, Label, Schema};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::Model;

/// Hyper-parameters for [`Logistic::train`].
#[derive(Debug, Clone, Copy)]
pub struct LogisticParams {
    /// Number of passes over the data.
    pub epochs: usize,
    /// SGD step size.
    pub lr: f64,
    /// L2 penalty.
    pub l2: f64,
}

impl Default for LogisticParams {
    fn default() -> Self {
        Self {
            epochs: 30,
            lr: 0.1,
            l2: 1e-4,
        }
    }
}

/// A trained one-hot logistic regression (binary).
#[derive(Debug, Clone)]
pub struct Logistic {
    /// `offsets[f]` is the first weight index of feature `f`.
    offsets: Vec<usize>,
    weights: Vec<f64>,
    bias: f64,
}

impl Logistic {
    /// Trains on a binary dataset (labels 0/1).
    ///
    /// # Panics
    /// Panics on empty data or non-binary labels.
    pub fn train(ds: &Dataset, params: &LogisticParams, seed: u64) -> Self {
        assert!(!ds.is_empty(), "cannot train on an empty dataset");
        assert!(ds.labels().iter().all(|l| l.0 <= 1), "Logistic is binary");
        let offsets = offsets_of(ds.schema());
        let dims = offsets.last().copied().unwrap_or(0)
            + ds.schema()
                .features()
                .last()
                .map(|f| f.cardinality())
                .unwrap_or(0);
        let mut w = vec![0.0f64; dims];
        let mut b = 0.0f64;
        let mut order: Vec<usize> = (0..ds.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..params.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let x = ds.instance(i);
                let y = f64::from(ds.label(i).0);
                let z = b + margin(&offsets, &w, x);
                let p = 1.0 / (1.0 + (-z).exp());
                let err = p - y;
                for (f, &off) in offsets.iter().enumerate() {
                    let j = off + x[f] as usize;
                    w[j] -= params.lr * (err + params.l2 * w[j]);
                }
                b -= params.lr * err;
            }
        }
        Self {
            offsets,
            weights: w,
            bias: b,
        }
    }

    /// The log-odds margin for an instance.
    pub fn margin(&self, x: &Instance) -> f64 {
        self.bias + margin(&self.offsets, &self.weights, x)
    }
}

fn offsets_of(schema: &Schema) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(schema.n_features());
    let mut acc = 0usize;
    for f in schema.features() {
        offsets.push(acc);
        acc += f.cardinality();
    }
    offsets
}

fn margin(offsets: &[usize], w: &[f64], x: &Instance) -> f64 {
    offsets
        .iter()
        .enumerate()
        .map(|(f, &off)| w[off + x[f] as usize])
        .sum()
}

impl Model for Logistic {
    fn predict(&self, x: &Instance) -> Label {
        Label(u32::from(self.margin(x) > 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::accuracy;
    use cce_dataset::synth;
    use cce_dataset::BinSpec;

    #[test]
    fn learns_loan_reasonably() {
        let raw = synth::loan::generate(614, 5);
        let ds = raw.encode(&BinSpec::uniform(10));
        let (train, test) = ds.split(0.7, &mut StdRng::seed_from_u64(2));
        let m = Logistic::train(&train, &LogisticParams::default(), 3);
        let acc = accuracy(&m, &test);
        assert!(acc > 0.72, "accuracy {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let raw = synth::loan::generate(200, 5);
        let ds = raw.encode(&BinSpec::uniform(8));
        let a = Logistic::train(&ds, &LogisticParams::default(), 7);
        let b = Logistic::train(&ds, &LogisticParams::default(), 7);
        for x in ds.instances() {
            assert_eq!(a.predict(x), b.predict(x));
        }
    }
}
