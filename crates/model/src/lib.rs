//! From-scratch ML models for the `relative-keys` workspace.
//!
//! The paper trains XGBoost \[29\] on the five general datasets (the most
//! complex model its formal baseline, Xreason, still supports) and Ditto
//! \[57\], a DNN, on the entity-matching datasets. This crate provides
//! from-scratch stand-ins:
//!
//! * [`DecisionTree`] — CART-style classification tree (gini),
//! * [`Gbdt`] — second-order gradient-boosted trees with logistic loss,
//!   an XGBoost work-alike whose white-box structure the Xreason baseline
//!   can reason over,
//! * [`Logistic`] — one-hot logistic regression (a cheap linear model),
//! * [`Mlp`] — a small multi-layer perceptron,
//! * [`Matcher`] — the Ditto stand-in: an [`Mlp`] over per-attribute
//!   similarity features of entity pairs (an opaque non-tree model that
//!   Xreason *cannot* explain — the property §7.5 exercises),
//! * [`RandomForest`] / [`NaiveBayes`] — additional (multiclass-capable)
//!   model families demonstrating that relative keys are model-agnostic,
//! * [`Counting`] — a wrapper counting model queries, used to demonstrate
//!   that CCE explains with **zero** model accesses while every baseline
//!   queries the model heavily.
//!
//! All models implement the object-safe [`Model`] trait and are
//! deterministic given their training seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boosting;
pub mod eval;
pub mod forest;
pub mod linear;
pub mod matcher;
pub mod mlp;
pub mod nb;
pub mod tree;

use std::cell::Cell;

use cce_dataset::{Instance, Label};

pub use boosting::{Gbdt, GbdtOvr, GbdtParams};
pub use forest::{ForestParams, RandomForest};
pub use linear::Logistic;
pub use matcher::Matcher;
pub use mlp::{Mlp, MlpParams};
pub use nb::NaiveBayes;
pub use tree::{DecisionTree, Node, RegressionTree, SplitTest, TreeParams};

/// A trained classifier over encoded instances.
///
/// This is the only interface the explanation methods see; heuristic
/// baselines call [`Model::predict`] on perturbed instances, while CCE
/// never calls it at all (it consumes recorded predictions).
pub trait Model {
    /// Predicts the label of one instance.
    fn predict(&self, x: &Instance) -> Label;

    /// Predicts labels for a batch of instances.
    fn predict_all(&self, xs: &[Instance]) -> Vec<Label> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

impl<M: Model + ?Sized> Model for &M {
    fn predict(&self, x: &Instance) -> Label {
        (**self).predict(x)
    }
}

impl<M: Model + ?Sized> Model for Box<M> {
    fn predict(&self, x: &Instance) -> Label {
        (**self).predict(x)
    }
}

/// Adapts a plain function into a [`Model`] — handy in tests.
pub struct ModelFn<F: Fn(&Instance) -> Label>(pub F);

impl<F: Fn(&Instance) -> Label> Model for ModelFn<F> {
    fn predict(&self, x: &Instance) -> Label {
        (self.0)(x)
    }
}

/// Wraps a model and counts every prediction query made through it.
///
/// The paper's key systems claim is that CCE requires *no* model access;
/// wrapping the model in `Counting` during an experiment proves it.
pub struct Counting<M> {
    inner: M,
    queries: Cell<u64>,
}

impl<M> Counting<M> {
    /// Wraps `inner`.
    pub fn new(inner: M) -> Self {
        Self {
            inner,
            queries: Cell::new(0),
        }
    }

    /// Number of predictions made through this wrapper so far.
    pub fn queries(&self) -> u64 {
        self.queries.get()
    }

    /// Resets the counter.
    pub fn reset(&self) {
        self.queries.set(0);
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: Model> Model for Counting<M> {
    fn predict(&self, x: &Instance) -> Label {
        self.queries.set(self.queries.get() + 1);
        self.inner.predict(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_fn_adapts_closures() {
        let m = ModelFn(|x: &Instance| Label(x[0]));
        assert_eq!(m.predict(&Instance::new(vec![3, 0])), Label(3));
    }

    #[test]
    fn counting_counts() {
        let m = Counting::new(ModelFn(|_: &Instance| Label(0)));
        let xs = vec![Instance::new(vec![0]), Instance::new(vec![1])];
        let _ = m.predict_all(&xs);
        assert_eq!(m.queries(), 2);
        m.reset();
        assert_eq!(m.queries(), 0);
    }

    #[test]
    fn references_and_boxes_are_models() {
        let m = ModelFn(|_: &Instance| Label(1));
        let r: &dyn Model = &m;
        assert_eq!(r.predict(&Instance::new(vec![0])), Label(1));
        let b: Box<dyn Model> = Box::new(ModelFn(|_: &Instance| Label(2)));
        assert_eq!(b.predict(&Instance::new(vec![0])), Label(2));
    }
}
