//! Random forest — bagged CART trees with feature subsampling.
//!
//! A second white-box ensemble (multiclass-capable, unlike the binary
//! [`Gbdt`]) and a further demonstration that relative keys are
//! model-agnostic: CCE explains it through recorded predictions exactly
//! like every other model.
//!
//! [`Gbdt`]: crate::Gbdt

use cce_dataset::{Dataset, Instance, Label};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::tree::{DecisionTree, TreeParams};
use crate::Model;

/// Hyper-parameters for [`RandomForest::train`].
#[derive(Debug, Clone, Copy)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Fraction of rows bootstrapped per tree.
    pub sample_frac: f64,
    /// Base-tree parameters.
    pub tree: TreeParams,
}

impl Default for ForestParams {
    fn default() -> Self {
        Self {
            n_trees: 20,
            sample_frac: 0.8,
            tree: TreeParams {
                max_depth: 6,
                ..TreeParams::default()
            },
        }
    }
}

/// A trained random forest (majority vote over bagged trees).
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Trains on a dataset with labels `0..k`.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn train(ds: &Dataset, params: &ForestParams, seed: u64) -> Self {
        assert!(!ds.is_empty(), "cannot train on an empty dataset");
        let n_classes = ds
            .labels()
            .iter()
            .map(|l| l.0 as usize + 1)
            .max()
            .unwrap_or(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let per_tree = ((ds.len() as f64) * params.sample_frac.clamp(0.05, 1.0))
            .round()
            .max(1.0) as usize;
        let trees = (0..params.n_trees)
            .map(|_| {
                let rows: Vec<usize> = (0..per_tree).map(|_| rng.gen_range(0..ds.len())).collect();
                DecisionTree::train(&ds.select(&rows), &params.tree)
            })
            .collect();
        Self { trees, n_classes }
    }

    /// Per-class vote counts for an instance.
    pub fn votes(&self, x: &Instance) -> Vec<usize> {
        let mut v = vec![0usize; self.n_classes];
        for t in &self.trees {
            let c = t.predict(x).0 as usize;
            if c < v.len() {
                v[c] += 1;
            }
        }
        v
    }

    /// The trained trees (white-box access).
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }
}

impl Model for RandomForest {
    fn predict(&self, x: &Instance) -> Label {
        let votes = self.votes(x);
        let best = votes
            .iter()
            .enumerate()
            .max_by_key(|&(_, v)| *v)
            .map(|(c, _)| c)
            .unwrap_or(0);
        Label(best as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::accuracy;
    use cce_dataset::{synth, BinSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_loan() {
        let ds = synth::loan::generate(614, 11).encode(&BinSpec::uniform(10));
        let (train, test) = ds.split(0.7, &mut StdRng::seed_from_u64(1));
        let m = RandomForest::train(&train, &ForestParams::default(), 0);
        let acc = accuracy(&m, &test);
        assert!(acc > 0.8, "forest accuracy {acc}");
    }

    #[test]
    fn votes_sum_to_tree_count() {
        let ds = synth::loan::generate(200, 3).encode(&BinSpec::uniform(6));
        let m = RandomForest::train(
            &ds,
            &ForestParams {
                n_trees: 7,
                ..Default::default()
            },
            0,
        );
        let v = m.votes(ds.instance(0));
        assert_eq!(v.iter().sum::<usize>(), 7);
    }

    #[test]
    fn handles_multiclass() {
        let ds = synth::tiers::generate(600, 5).encode(&BinSpec::uniform(8));
        let (train, test) = ds.split(0.7, &mut StdRng::seed_from_u64(2));
        let m = RandomForest::train(&train, &ForestParams::default(), 0);
        let acc = accuracy(&m, &test);
        assert!(acc > 0.6, "multiclass accuracy {acc}");
        // All three classes appear among predictions.
        let mut seen = [false; 3];
        for x in test.instances() {
            seen[m.predict(x).0 as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all tiers predicted");
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = synth::loan::generate(150, 5).encode(&BinSpec::uniform(6));
        let a = RandomForest::train(&ds, &ForestParams::default(), 42);
        let b = RandomForest::train(&ds, &ForestParams::default(), 42);
        for x in ds.instances().iter().take(30) {
            assert_eq!(a.predict(x), b.predict(x));
        }
    }
}
