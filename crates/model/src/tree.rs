//! Decision trees: CART classification and second-order regression trees.
//!
//! Trees are the white-box substrate of the workspace: [`Gbdt`] boosts
//! [`RegressionTree`]s, and the Xreason baseline reasons over their split
//! structure through the public [`Tree::nodes`] accessor.
//!
//! Splits respect the schema: binned numeric features use ordinal
//! `value <= t` tests, categorical features use `value == v` tests.
//!
//! [`Gbdt`]: crate::Gbdt

use cce_dataset::{Cat, Dataset, Instance, Label, Schema};

/// A branching test on one feature value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitTest {
    /// Goes left when `value <= threshold` (ordinal features).
    LessEq(Cat),
    /// Goes left when `value == target` (categorical features).
    Equal(Cat),
}

impl SplitTest {
    /// Whether value `v` takes the left branch.
    #[inline]
    pub fn goes_left(&self, v: Cat) -> bool {
        match *self {
            SplitTest::LessEq(t) => v <= t,
            SplitTest::Equal(t) => v == t,
        }
    }
}

/// A tree node: leaf payload or internal split.
#[derive(Debug, Clone, PartialEq)]
pub enum Node<L> {
    /// Terminal node carrying the prediction payload.
    Leaf(L),
    /// Internal split.
    Split {
        /// Feature tested.
        feature: usize,
        /// Branch test.
        test: SplitTest,
        /// Index of the left child in the node arena.
        left: u32,
        /// Index of the right child in the node arena.
        right: u32,
    },
}

/// An arena-allocated binary tree with root at index 0.
#[derive(Debug, Clone, PartialEq)]
pub struct Tree<L> {
    nodes: Vec<Node<L>>,
}

impl<L: Copy> Tree<L> {
    /// Wraps a node arena. Root must be at index 0 and children must point
    /// forward.
    pub fn from_nodes(nodes: Vec<Node<L>>) -> Self {
        debug_assert!(!nodes.is_empty());
        Self { nodes }
    }

    /// The node arena (read-only) — used by the Xreason oracle.
    pub fn nodes(&self) -> &[Node<L>] {
        &self.nodes
    }

    /// Evaluates the tree on an instance.
    pub fn eval(&self, x: &Instance) -> L {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    test,
                    left,
                    right,
                } => {
                    i = if test.goes_left(x[*feature]) {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf(_)))
            .count()
    }

    /// Maximum depth (root-only tree has depth 0).
    pub fn depth(&self) -> usize {
        fn go<L>(nodes: &[Node<L>], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf(_) => 0,
                Node::Split { left, right, .. } => {
                    1 + go(nodes, *left as usize).max(go(nodes, *right as usize))
                }
            }
        }
        go(&self.nodes, 0)
    }
}

/// Hyper-parameters shared by tree trainers.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum rows per leaf.
    pub min_samples_leaf: usize,
    /// L2 regularization on leaf weights (regression trees).
    pub lambda: f64,
    /// Minimum gain required to split (regression trees).
    pub gamma: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 4,
            min_samples_leaf: 2,
            lambda: 1.0,
            gamma: 1e-6,
        }
    }
}

// --- Classification (CART / gini) ------------------------------------------

/// A CART-style classification tree trained with gini impurity.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    tree: Tree<Label>,
}

impl DecisionTree {
    /// Trains on a dataset.
    pub fn train(ds: &Dataset, params: &TreeParams) -> Self {
        let n_classes = ds
            .labels()
            .iter()
            .map(|l| l.0 as usize + 1)
            .max()
            .unwrap_or(1);
        let rows: Vec<u32> = (0..ds.len() as u32).collect();
        let mut nodes = Vec::new();
        build_classifier(ds, &rows, n_classes, params, 0, &mut nodes);
        Self {
            tree: Tree::from_nodes(nodes),
        }
    }

    /// The underlying split structure.
    pub fn tree(&self) -> &Tree<Label> {
        &self.tree
    }
}

impl crate::Model for DecisionTree {
    fn predict(&self, x: &Instance) -> Label {
        self.tree.eval(x)
    }
}

fn class_counts(ds: &Dataset, rows: &[u32], n_classes: usize) -> Vec<usize> {
    let mut c = vec![0usize; n_classes];
    for &r in rows {
        c[ds.label(r as usize).0 as usize] += 1;
    }
    c
}

fn gini(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>()
}

fn majority(counts: &[usize]) -> Label {
    let best = counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| *c)
        .map(|(i, _)| i)
        .unwrap_or(0);
    Label(best as u32)
}

/// Appends the subtree for `rows` to `nodes`, returning its index.
fn build_classifier(
    ds: &Dataset,
    rows: &[u32],
    n_classes: usize,
    params: &TreeParams,
    depth: usize,
    nodes: &mut Vec<Node<Label>>,
) -> u32 {
    let counts = class_counts(ds, rows, n_classes);
    let here = gini(&counts);
    let idx = nodes.len() as u32;
    if depth >= params.max_depth || here == 0.0 || rows.len() < 2 * params.min_samples_leaf {
        nodes.push(Node::Leaf(majority(&counts)));
        return idx;
    }

    let schema = ds.schema();
    let mut best: Option<(f64, usize, SplitTest)> = None;
    for f in 0..schema.n_features() {
        let card = schema.feature(f).cardinality();
        if card < 2 {
            continue;
        }
        // counts[value][class]
        let mut vc = vec![vec![0usize; n_classes]; card];
        for &r in rows {
            vc[ds.instance(r as usize)[f] as usize][ds.label(r as usize).0 as usize] += 1;
        }
        let tests: Vec<SplitTest> = if schema.feature(f).is_ordinal() {
            (0..card as Cat - 1).map(SplitTest::LessEq).collect()
        } else {
            (0..card as Cat).map(SplitTest::Equal).collect()
        };
        for test in tests {
            let mut left = vec![0usize; n_classes];
            for (v, classes) in vc.iter().enumerate() {
                if test.goes_left(v as Cat) {
                    for (l, c) in left.iter_mut().zip(classes) {
                        *l += c;
                    }
                }
            }
            let ln: usize = left.iter().sum();
            let rn = rows.len() - ln;
            if ln < params.min_samples_leaf || rn < params.min_samples_leaf {
                continue;
            }
            let right: Vec<usize> = counts.iter().zip(&left).map(|(t, l)| t - l).collect();
            let w = rows.len() as f64;
            let split_gini = (ln as f64 / w) * gini(&left) + (rn as f64 / w) * gini(&right);
            let gain = here - split_gini;
            if gain > 1e-12 && best.is_none_or(|(g, _, _)| gain > g) {
                best = Some((gain, f, test));
            } else if best.is_none() && gain >= -1e-12 {
                // Zero-gain fallback: an impure node where no single split
                // reduces gini (e.g. XOR) may still become separable one
                // level down. Depth bounds keep this terminating.
                best = Some((0.0, f, test));
            }
        }
    }

    let Some((_, f, test)) = best else {
        nodes.push(Node::Leaf(majority(&counts)));
        return idx;
    };

    let (lrows, rrows): (Vec<u32>, Vec<u32>) = rows
        .iter()
        .partition(|&&r| test.goes_left(ds.instance(r as usize)[f]));
    // Reserve this node, then build children after it in the arena.
    nodes.push(Node::Leaf(Label(0))); // placeholder
    let left = build_classifier(ds, &lrows, n_classes, params, depth + 1, nodes);
    let right = build_classifier(ds, &rrows, n_classes, params, depth + 1, nodes);
    nodes[idx as usize] = Node::Split {
        feature: f,
        test,
        left,
        right,
    };
    idx
}

// --- Regression (second-order, XGBoost-style) -------------------------------

/// A regression tree fit to gradient/hessian pairs with XGBoost-style gain
/// and L2-regularized leaf weights — the base learner of [`Gbdt`].
///
/// [`Gbdt`]: crate::Gbdt
#[derive(Debug, Clone)]
pub struct RegressionTree {
    tree: Tree<f64>,
}

impl RegressionTree {
    /// Fits a tree to per-row gradients `g` and hessians `h` over the
    /// instances of `ds` (labels in `ds` are ignored).
    pub fn fit(ds: &Dataset, g: &[f64], h: &[f64], params: &TreeParams) -> Self {
        assert_eq!(ds.len(), g.len());
        assert_eq!(ds.len(), h.len());
        let rows: Vec<u32> = (0..ds.len() as u32).collect();
        let mut nodes = Vec::new();
        build_regressor(ds.schema(), ds, g, h, &rows, params, 0, &mut nodes);
        Self {
            tree: Tree::from_nodes(nodes),
        }
    }

    /// Evaluates the tree's raw leaf weight for an instance.
    pub fn eval(&self, x: &Instance) -> f64 {
        self.tree.eval(x)
    }

    /// The underlying split structure — consumed by the Xreason oracle.
    pub fn tree(&self) -> &Tree<f64> {
        &self.tree
    }
}

#[allow(clippy::too_many_arguments)]
fn build_regressor(
    schema: &Schema,
    ds: &Dataset,
    g: &[f64],
    h: &[f64],
    rows: &[u32],
    params: &TreeParams,
    depth: usize,
    nodes: &mut Vec<Node<f64>>,
) -> u32 {
    let gsum: f64 = rows.iter().map(|&r| g[r as usize]).sum();
    let hsum: f64 = rows.iter().map(|&r| h[r as usize]).sum();
    let leaf_weight = -gsum / (hsum + params.lambda);
    let score = |gs: f64, hs: f64| gs * gs / (hs + params.lambda);
    let idx = nodes.len() as u32;
    if depth >= params.max_depth || rows.len() < 2 * params.min_samples_leaf {
        nodes.push(Node::Leaf(leaf_weight));
        return idx;
    }

    let mut best: Option<(f64, usize, SplitTest)> = None;
    for f in 0..schema.n_features() {
        let card = schema.feature(f).cardinality();
        if card < 2 {
            continue;
        }
        let mut vg = vec![0.0f64; card];
        let mut vh = vec![0.0f64; card];
        let mut vn = vec![0usize; card];
        for &r in rows {
            let v = ds.instance(r as usize)[f] as usize;
            vg[v] += g[r as usize];
            vh[v] += h[r as usize];
            vn[v] += 1;
        }
        let tests: Vec<SplitTest> = if schema.feature(f).is_ordinal() {
            (0..card as Cat - 1).map(SplitTest::LessEq).collect()
        } else {
            (0..card as Cat).map(SplitTest::Equal).collect()
        };
        for test in tests {
            let (mut gl, mut hl, mut nl) = (0.0, 0.0, 0usize);
            for v in 0..card {
                if test.goes_left(v as Cat) {
                    gl += vg[v];
                    hl += vh[v];
                    nl += vn[v];
                }
            }
            let nr = rows.len() - nl;
            if nl < params.min_samples_leaf || nr < params.min_samples_leaf {
                continue;
            }
            let gain = 0.5 * (score(gl, hl) + score(gsum - gl, hsum - hl) - score(gsum, hsum));
            if gain > params.gamma && best.is_none_or(|(bg, _, _)| gain > bg) {
                best = Some((gain, f, test));
            }
        }
    }

    let Some((_, f, test)) = best else {
        nodes.push(Node::Leaf(leaf_weight));
        return idx;
    };

    let (lrows, rrows): (Vec<u32>, Vec<u32>) = rows
        .iter()
        .partition(|&&r| test.goes_left(ds.instance(r as usize)[f]));
    nodes.push(Node::Leaf(0.0)); // placeholder
    let left = build_regressor(schema, ds, g, h, &lrows, params, depth + 1, nodes);
    let right = build_regressor(schema, ds, g, h, &rrows, params, depth + 1, nodes);
    nodes[idx as usize] = Node::Split {
        feature: f,
        test,
        left,
        right,
    };
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;
    use cce_dataset::{FeatureDef, Schema};

    fn dataset(rows: Vec<(Vec<Cat>, u32)>, ordinal: &[bool]) -> Dataset {
        let n = rows[0].0.len();
        let feats = (0..n)
            .map(|i| {
                if ordinal[i] {
                    // Fake ordinal feature via a numeric binning over 0..9.
                    let vals: Vec<f64> = (0..10).map(f64::from).collect();
                    FeatureDef::numeric(
                        &format!("f{i}"),
                        cce_dataset::Binning::fit(&vals, 10, Default::default()),
                    )
                } else {
                    FeatureDef::categorical(&format!("f{i}"), &["0", "1", "2", "3", "4"])
                }
            })
            .collect();
        let schema = Schema::new(feats);
        let (xs, ys): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
        Dataset::new(
            "t".into(),
            schema,
            xs.into_iter().map(Instance::new).collect(),
            ys.into_iter().map(Label).collect(),
        )
    }

    #[test]
    fn split_test_semantics() {
        assert!(SplitTest::LessEq(3).goes_left(3));
        assert!(!SplitTest::LessEq(3).goes_left(4));
        assert!(SplitTest::Equal(2).goes_left(2));
        assert!(!SplitTest::Equal(2).goes_left(1));
    }

    #[test]
    fn learns_single_categorical_rule() {
        // y = (f0 == 1)
        let rows: Vec<(Vec<Cat>, u32)> = (0..40)
            .map(|i| (vec![i % 3, i % 5], u32::from(i % 3 == 1)))
            .collect();
        let ds = dataset(rows, &[false, false]);
        let t = DecisionTree::train(&ds, &TreeParams::default());
        for (x, y) in ds.iter() {
            assert_eq!(t.predict(x), y);
        }
    }

    #[test]
    fn learns_ordinal_threshold() {
        // y = (f0 <= 4)
        let rows: Vec<(Vec<Cat>, u32)> = (0..60)
            .map(|i| (vec![i % 10, (i * 7) % 5], u32::from(i % 10 <= 4)))
            .collect();
        let ds = dataset(rows, &[true, false]);
        let t = DecisionTree::train(&ds, &TreeParams::default());
        assert!(t.tree().depth() <= 2, "single threshold suffices");
        for (x, y) in ds.iter() {
            assert_eq!(t.predict(x), y);
        }
    }

    #[test]
    fn learns_xor_with_depth_two() {
        // y = (f0 == 1) XOR (f1 == 1): requires depth 2.
        let mut rows = Vec::new();
        for a in 0..2u32 {
            for b in 0..2u32 {
                for _ in 0..5 {
                    rows.push((vec![a, b], a ^ b));
                }
            }
        }
        let ds = dataset(rows, &[false, false]);
        let t = DecisionTree::train(
            &ds,
            &TreeParams {
                max_depth: 3,
                ..Default::default()
            },
        );
        for (x, y) in ds.iter() {
            assert_eq!(t.predict(x), y, "on {:?}", x.values());
        }
    }

    #[test]
    fn respects_max_depth() {
        let rows: Vec<(Vec<Cat>, u32)> = (0..100u32)
            .map(|i| (vec![i % 10, (i / 10) % 10], i.wrapping_mul(2654435761) % 2))
            .collect();
        let ds = dataset(rows, &[true, true]);
        let t = DecisionTree::train(
            &ds,
            &TreeParams {
                max_depth: 2,
                ..Default::default()
            },
        );
        assert!(t.tree().depth() <= 2);
    }

    #[test]
    fn pure_node_stops_early() {
        let rows: Vec<(Vec<Cat>, u32)> = (0..20).map(|i| (vec![i % 4, i % 3], 1)).collect();
        let ds = dataset(rows, &[false, false]);
        let t = DecisionTree::train(&ds, &TreeParams::default());
        assert_eq!(t.tree().n_leaves(), 1);
        assert_eq!(t.predict(&Instance::new(vec![9, 9])), Label(1));
    }

    #[test]
    fn regression_tree_fits_gradients() {
        // g encodes "pull rows with f0<=4 toward +1, others toward -1".
        let rows: Vec<(Vec<Cat>, u32)> = (0..60).map(|i| (vec![i % 10, 0], 0)).collect();
        let ds = dataset(rows, &[true, false]);
        let g: Vec<f64> = (0..60)
            .map(|i| if i % 10 <= 4 { -1.0 } else { 1.0 })
            .collect();
        let h = vec![1.0; 60];
        let t = RegressionTree::fit(&ds, &g, &h, &TreeParams::default());
        let lo = t.eval(&Instance::new(vec![2, 0]));
        let hi = t.eval(&Instance::new(vec![8, 0]));
        assert!(lo > 0.3, "lo={lo}");
        assert!(hi < -0.3, "hi={hi}");
    }

    #[test]
    fn eval_matches_manual_arena() {
        let nodes = vec![
            Node::Split {
                feature: 0,
                test: SplitTest::Equal(1),
                left: 1,
                right: 2,
            },
            Node::Leaf(10.0),
            Node::Leaf(20.0),
        ];
        let t = Tree::from_nodes(nodes);
        assert_eq!(t.eval(&Instance::new(vec![1])), 10.0);
        assert_eq!(t.eval(&Instance::new(vec![0])), 20.0);
        assert_eq!(t.n_leaves(), 2);
        assert_eq!(t.depth(), 1);
    }
}
