//! Categorical naive Bayes with Laplace smoothing.
//!
//! The cheapest multiclass classifier in the workspace — useful as a
//! fast blackbox for tests and as yet another model family CCE explains
//! without access.

use cce_dataset::{Dataset, Instance, Label};

use crate::Model;

/// A trained categorical naive Bayes classifier.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    /// `log_prior[c]`.
    log_prior: Vec<f64>,
    /// `log_like[c][f][v]` = log P(feature f takes value v | class c).
    log_like: Vec<Vec<Vec<f64>>>,
}

impl NaiveBayes {
    /// Trains with Laplace smoothing `alpha` (use 1.0 when unsure).
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn train(ds: &Dataset, alpha: f64) -> Self {
        assert!(!ds.is_empty(), "cannot train on an empty dataset");
        let alpha = alpha.max(1e-9);
        let n_classes = ds
            .labels()
            .iter()
            .map(|l| l.0 as usize + 1)
            .max()
            .unwrap_or(1);
        let n = ds.schema().n_features();

        let mut class_counts = vec![0usize; n_classes];
        for l in ds.labels() {
            class_counts[l.0 as usize] += 1;
        }
        let log_prior = class_counts
            .iter()
            .map(|&c| ((c as f64 + alpha) / (ds.len() as f64 + alpha * n_classes as f64)).ln())
            .collect();

        let mut log_like = vec![Vec::with_capacity(n); n_classes];
        for (c, rows) in log_like.iter_mut().enumerate() {
            for f in 0..n {
                let card = ds.schema().feature(f).cardinality();
                let mut counts = vec![0usize; card];
                for (x, y) in ds.iter() {
                    if y.0 as usize == c {
                        counts[x[f] as usize] += 1;
                    }
                }
                let total = class_counts[c] as f64 + alpha * card as f64;
                rows.push(
                    counts
                        .iter()
                        .map(|&k| ((k as f64 + alpha) / total).ln())
                        .collect(),
                );
            }
        }
        Self {
            log_prior,
            log_like,
        }
    }

    /// Per-class log-posterior (unnormalized).
    pub fn log_scores(&self, x: &Instance) -> Vec<f64> {
        self.log_prior
            .iter()
            .enumerate()
            .map(|(c, &lp)| {
                lp + (0..x.len())
                    .map(|f| {
                        let row = &self.log_like[c][f];
                        row.get(x[f] as usize).copied().unwrap_or_else(|| {
                            // Unseen code: behave like a fully-smoothed cell.
                            row.iter().copied().fold(f64::INFINITY, f64::min)
                        })
                    })
                    .sum::<f64>()
            })
            .collect()
    }
}

impl Model for NaiveBayes {
    fn predict(&self, x: &Instance) -> Label {
        let scores = self.log_scores(x);
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite log-scores"))
            .map(|(c, _)| c)
            .unwrap_or(0);
        Label(best as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::accuracy;
    use cce_dataset::{synth, BinSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_loan_reasonably() {
        let ds = synth::loan::generate(614, 11).encode(&BinSpec::uniform(10));
        let (train, test) = ds.split(0.7, &mut StdRng::seed_from_u64(1));
        let m = NaiveBayes::train(&train, 1.0);
        let acc = accuracy(&m, &test);
        assert!(acc > 0.72, "NB accuracy {acc}");
    }

    #[test]
    fn handles_multiclass_tiers() {
        let ds = synth::tiers::generate(800, 9).encode(&BinSpec::uniform(8));
        let (train, test) = ds.split(0.7, &mut StdRng::seed_from_u64(2));
        let m = NaiveBayes::train(&train, 1.0);
        assert!(accuracy(&m, &test) > 0.55);
    }

    #[test]
    fn log_scores_are_finite_and_ordered() {
        let ds = synth::loan::generate(200, 4).encode(&BinSpec::uniform(8));
        let m = NaiveBayes::train(&ds, 1.0);
        for x in ds.instances().iter().take(30) {
            let s = m.log_scores(x);
            assert!(s.iter().all(|v| v.is_finite()));
            let pred = m.predict(x).0 as usize;
            assert!(s[pred] >= s[1 - pred]);
        }
    }

    #[test]
    fn smoothing_prevents_zero_probabilities() {
        // A class that never sees value 1 of feature 0 must still score
        // finitely on it.
        use cce_dataset::{FeatureDef, Schema};
        let schema = Schema::new(vec![FeatureDef::categorical("a", &["x", "y"])]);
        let ds = Dataset::new(
            "t".into(),
            schema,
            vec![Instance::new(vec![0]), Instance::new(vec![1])],
            vec![Label(0), Label(1)],
        );
        let m = NaiveBayes::train(&ds, 1.0);
        let s = m.log_scores(&Instance::new(vec![1]));
        assert!(
            s[0].is_finite(),
            "class 0 never saw value 1 but must not be -inf"
        );
    }
}
