//! The entity-matching model — our Ditto \[57\] stand-in.
//!
//! Ditto is a fine-tuned transformer over serialized record pairs. We keep
//! the property the paper's §7.5 evaluation needs — an *opaque, non-tree*
//! model over entity pairs that only CCE, Anchor and CERTA can explain —
//! while making it tractable: record pairs are featurized into
//! per-attribute similarities (see `cce_dataset::synth::em`), discretized,
//! and classified by an [`Mlp`].
//!
//! The matcher implements [`Model`] over the *encoded* instances, decoding
//! bucket codes back to representative similarity values internally, so it
//! plugs into every explainer in the workspace unchanged.

use cce_dataset::{Dataset, FeatureKind, Instance, Label, Schema};
use std::sync::Arc;

use crate::mlp::{Mlp, MlpParams};
use crate::Model;

/// A trained entity matcher: an MLP over decoded attribute similarities.
#[derive(Debug, Clone)]
pub struct Matcher {
    mlp: Mlp,
    schema: Arc<Schema>,
}

impl Matcher {
    /// Trains on an encoded EM dataset (binned similarity features, labels
    /// `Match`/`NoMatch`).
    ///
    /// # Panics
    /// Panics on empty data or non-binary labels.
    pub fn train(ds: &Dataset, params: &MlpParams, seed: u64) -> Self {
        assert!(!ds.is_empty(), "cannot train on an empty dataset");
        assert!(ds.labels().iter().all(|l| l.0 <= 1), "Matcher is binary");
        let schema = ds.schema_arc();
        let xs: Vec<Vec<f64>> = ds.instances().iter().map(|x| decode(&schema, x)).collect();
        let ys: Vec<f64> = ds.labels().iter().map(|l| f64::from(l.0)).collect();
        let mlp = Mlp::train(&xs, &ys, params, seed);
        Self { mlp, schema }
    }

    /// Match probability of an encoded pair.
    pub fn proba(&self, x: &Instance) -> f64 {
        self.mlp.proba(&decode(&self.schema, x))
    }
}

/// Decodes bucket codes to representative raw values for the MLP.
fn decode(schema: &Schema, x: &Instance) -> Vec<f64> {
    (0..schema.n_features())
        .map(|f| match &schema.feature(f).kind {
            FeatureKind::Numeric { binning } => binning.midpoint(x[f]),
            FeatureKind::Categorical { names } => {
                // EM features are all numeric similarities, but stay total.
                f64::from(x[f]) / names.len().max(1) as f64
            }
        })
        .collect()
}

impl Model for Matcher {
    fn predict(&self, x: &Instance) -> Label {
        Label(u32::from(self.proba(x) > 0.5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::accuracy;
    use cce_dataset::synth::em;
    use cce_dataset::BinSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_entity_matching() {
        let em = em::amazon_google(1_500, 7);
        let ds = em.to_raw().encode(&BinSpec::uniform(8));
        let (train, test) = ds.split(0.7, &mut StdRng::seed_from_u64(5));
        let m = Matcher::train(&train, &MlpParams::default(), 6);
        let acc = accuracy(&m, &test);
        assert!(acc > 0.9, "EM accuracy {acc}");
    }

    #[test]
    fn finds_most_matches() {
        let em = em::dblp_acm(1_200, 8);
        let ds = em.to_raw().encode(&BinSpec::uniform(8));
        let (train, test) = ds.split(0.7, &mut StdRng::seed_from_u64(6));
        let m = Matcher::train(&train, &MlpParams::default(), 7);
        let (mut hit, mut tot) = (0usize, 0usize);
        for (x, y) in test.iter() {
            if y == Label(1) {
                tot += 1;
                hit += usize::from(m.predict(x) == Label(1));
            }
        }
        assert!(tot > 20, "need matches in the test split");
        assert!(hit as f64 / tot as f64 > 0.7, "match recall {}/{tot}", hit);
    }

    #[test]
    fn proba_is_probability() {
        let em = em::walmart_amazon(600, 9);
        let ds = em.to_raw().encode(&BinSpec::uniform(6));
        let m = Matcher::train(
            &ds,
            &MlpParams {
                epochs: 10,
                ..Default::default()
            },
            1,
        );
        for x in ds.instances().iter().take(50) {
            let p = m.proba(x);
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
