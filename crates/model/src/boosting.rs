//! Gradient-boosted decision trees — the workspace's XGBoost stand-in.
//!
//! Binary classification with logistic loss and second-order (Newton)
//! boosting: each round fits a [`RegressionTree`] to the loss gradients
//! and hessians, exactly the scheme of XGBoost \[29\] on which the paper
//! trains its models. The ensemble's tree structure is public so the
//! formal Xreason baseline can reason over it.

use cce_dataset::{Dataset, Instance, Label};

use crate::tree::{RegressionTree, TreeParams};
use crate::Model;

/// Hyper-parameters for [`Gbdt::train`].
#[derive(Debug, Clone, Copy)]
pub struct GbdtParams {
    /// Number of boosting rounds (trees).
    pub n_trees: usize,
    /// Learning rate (shrinkage) applied to every leaf weight.
    pub learning_rate: f64,
    /// Base-learner parameters.
    pub tree: TreeParams,
}

impl Default for GbdtParams {
    fn default() -> Self {
        Self {
            n_trees: 30,
            learning_rate: 0.3,
            tree: TreeParams::default(),
        }
    }
}

impl GbdtParams {
    /// A small, fast configuration for unit tests and examples.
    pub fn fast() -> Self {
        Self {
            n_trees: 10,
            learning_rate: 0.4,
            tree: TreeParams {
                max_depth: 3,
                ..TreeParams::default()
            },
        }
    }

    /// A configuration kept small enough for the exact Xreason oracle to
    /// stay tractable (the paper's Xreason is likewise limited to modest
    /// ensembles).
    pub fn explainable() -> Self {
        Self {
            n_trees: 60,
            learning_rate: 0.2,
            tree: TreeParams {
                max_depth: 6,
                ..TreeParams::default()
            },
        }
    }
}

/// A trained gradient-boosted tree ensemble (binary logistic).
///
/// `predict` returns `Label(1)` when the boosted margin (log-odds) is
/// positive.
#[derive(Debug, Clone)]
pub struct Gbdt {
    trees: Vec<RegressionTree>,
    base_margin: f64,
    learning_rate: f64,
}

impl Gbdt {
    /// Trains on a binary dataset (labels must be 0/1).
    ///
    /// `seed` is accepted for interface uniformity; training itself is
    /// deterministic (exact greedy splits, no subsampling).
    ///
    /// # Panics
    /// Panics if the dataset is empty or contains labels other than 0/1.
    pub fn train(ds: &Dataset, params: &GbdtParams, seed: u64) -> Self {
        let _timer = cce_obs::SpanTimer::start(cce_obs::histogram!(
            "cce_model_train_ns",
            "model" => "gbdt"
        ));
        let _ = seed;
        assert!(!ds.is_empty(), "cannot train on an empty dataset");
        assert!(
            ds.labels().iter().all(|l| l.0 <= 1),
            "Gbdt is a binary classifier; labels must be 0/1"
        );
        let n = ds.len();
        let pos = ds.labels().iter().filter(|l| l.0 == 1).count() as f64;
        // Log-odds prior, clamped away from degenerate all-one-class data.
        let p0 = (pos / n as f64).clamp(1e-4, 1.0 - 1e-4);
        let base_margin = (p0 / (1.0 - p0)).ln();

        let mut margins = vec![base_margin; n];
        let mut trees = Vec::with_capacity(params.n_trees);
        let mut g = vec![0.0f64; n];
        let mut h = vec![0.0f64; n];
        for _ in 0..params.n_trees {
            for i in 0..n {
                let p = sigmoid(margins[i]);
                let y = f64::from(ds.label(i).0);
                g[i] = p - y;
                h[i] = (p * (1.0 - p)).max(1e-9);
            }
            let tree = RegressionTree::fit(ds, &g, &h, &params.tree);
            for (i, x) in ds.instances().iter().enumerate() {
                margins[i] += params.learning_rate * tree.eval(x);
            }
            trees.push(tree);
        }
        Self {
            trees,
            base_margin,
            learning_rate: params.learning_rate,
        }
    }

    /// The boosted log-odds margin for an instance.
    pub fn margin(&self, x: &Instance) -> f64 {
        self.base_margin + self.learning_rate * self.trees.iter().map(|t| t.eval(x)).sum::<f64>()
    }

    /// Predicted probability of class 1.
    pub fn predict_proba(&self, x: &Instance) -> f64 {
        sigmoid(self.margin(x))
    }

    /// The trained trees — consumed by the Xreason oracle.
    pub fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }

    /// The constant margin added before any tree.
    pub fn base_margin(&self) -> f64 {
        self.base_margin
    }

    /// The shrinkage applied to each tree's output.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }
}

impl Model for Gbdt {
    fn predict(&self, x: &Instance) -> Label {
        Label(u32::from(self.margin(x) > 0.0))
    }
}

/// A multiclass gradient-boosted ensemble via one-vs-rest: one binary
/// [`Gbdt`] per class, predicting the class with the largest margin.
#[derive(Debug, Clone)]
pub struct GbdtOvr {
    per_class: Vec<Gbdt>,
}

impl GbdtOvr {
    /// Trains one binary ensemble per observed class.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn train(ds: &Dataset, params: &GbdtParams, seed: u64) -> Self {
        assert!(!ds.is_empty(), "cannot train on an empty dataset");
        let n_classes = ds
            .labels()
            .iter()
            .map(|l| l.0 as usize + 1)
            .max()
            .unwrap_or(1);
        let per_class = (0..n_classes as u32)
            .map(|c| {
                let mut binary = ds.clone();
                binary.set_labels(
                    ds.labels()
                        .iter()
                        .map(|l| Label(u32::from(l.0 == c)))
                        .collect(),
                );
                Gbdt::train(&binary, params, seed)
            })
            .collect();
        Self { per_class }
    }

    /// Per-class margins for an instance.
    pub fn margins(&self, x: &Instance) -> Vec<f64> {
        self.per_class.iter().map(|m| m.margin(x)).collect()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.per_class.len()
    }

    /// The underlying binary ensembles (white-box access, e.g. for
    /// per-class Xreason queries).
    pub fn ensembles(&self) -> &[Gbdt] {
        &self.per_class
    }
}

impl Model for GbdtOvr {
    fn predict(&self, x: &Instance) -> Label {
        let best = self
            .margins(x)
            .into_iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite margins"))
            .map(|(c, _)| c)
            .unwrap_or(0);
        Label(best as u32)
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::accuracy;
    use cce_dataset::synth;
    use cce_dataset::BinSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn loan_split() -> (Dataset, Dataset) {
        let raw = synth::loan::generate(614, 11);
        let ds = raw.encode(&BinSpec::uniform(10));
        ds.split(0.7, &mut StdRng::seed_from_u64(1))
    }

    #[test]
    fn learns_loan_decisions() {
        let (train, test) = loan_split();
        let m = Gbdt::train(&train, &GbdtParams::default(), 0);
        let acc = accuracy(&m, &test);
        assert!(acc > 0.8, "test accuracy {acc}");
    }

    #[test]
    fn beats_majority_class() {
        let (train, test) = loan_split();
        let m = Gbdt::train(&train, &GbdtParams::fast(), 0);
        let majority = test
            .labels()
            .iter()
            .filter(|l| l.0 == 1)
            .count()
            .max(test.labels().iter().filter(|l| l.0 == 0).count()) as f64
            / test.len() as f64;
        assert!(accuracy(&m, &test) > majority);
    }

    #[test]
    fn margin_agrees_with_prediction() {
        let (train, _) = loan_split();
        let m = Gbdt::train(&train, &GbdtParams::fast(), 0);
        for x in train.instances().iter().take(50) {
            let pred = m.predict(x);
            assert_eq!(pred, Label(u32::from(m.margin(x) > 0.0)));
            let p = m.predict_proba(x);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn training_is_deterministic() {
        let (train, test) = loan_split();
        let a = Gbdt::train(&train, &GbdtParams::fast(), 0);
        let b = Gbdt::train(&train, &GbdtParams::fast(), 99);
        for x in test.instances() {
            assert_eq!(a.predict(x), b.predict(x));
        }
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn rejects_multiclass() {
        let raw = synth::loan::generate(100, 3);
        let mut ds = raw.encode(&BinSpec::uniform(5));
        let mut labels = ds.labels().to_vec();
        labels[0] = Label(2);
        ds.set_labels(labels);
        let _ = Gbdt::train(&ds, &GbdtParams::fast(), 0);
    }

    #[test]
    fn ovr_learns_three_tiers() {
        let raw = synth::tiers::generate(900, 4);
        let ds = raw.encode(&BinSpec::uniform(8));
        let (train, test) = ds.split(0.7, &mut StdRng::seed_from_u64(3));
        let m = GbdtOvr::train(&train, &GbdtParams::fast(), 0);
        assert_eq!(m.n_classes(), 3);
        let acc = accuracy(&m, &test);
        assert!(acc > 0.6, "OvR accuracy {acc}");
        // Margins and prediction agree.
        for x in test.instances().iter().take(20) {
            let margins = m.margins(x);
            let argmax = margins
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0 as u32;
            assert_eq!(m.predict(x).0, argmax);
        }
    }

    #[test]
    fn ovr_on_binary_data_matches_classes() {
        let raw = synth::loan::generate(300, 5);
        let ds = raw.encode(&BinSpec::uniform(8));
        let m = GbdtOvr::train(&ds, &GbdtParams::fast(), 0);
        assert_eq!(m.n_classes(), 2);
        assert_eq!(m.ensembles().len(), 2);
    }

    #[test]
    fn single_class_data_predicts_that_class() {
        let raw = synth::loan::generate(120, 3);
        let mut ds = raw.encode(&BinSpec::uniform(5));
        ds.set_labels(vec![Label(1); ds.len()]);
        let m = Gbdt::train(&ds, &GbdtParams::fast(), 0);
        for x in ds.instances().iter().take(20) {
            assert_eq!(m.predict(x), Label(1));
        }
    }
}
