//! A small multi-layer perceptron, trained with plain backprop.
//!
//! This is the opaque "DNN" of the workspace: one hidden tanh layer and a
//! sigmoid output, trained by seeded SGD with momentum. It deliberately
//! exposes *no* structure — the Xreason baseline cannot explain it, which
//! is exactly the situation §7.5 evaluates on the entity-matching task.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Hyper-parameters for [`Mlp::train`].
#[derive(Debug, Clone, Copy)]
pub struct MlpParams {
    /// Hidden layer width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f64,
    /// Momentum coefficient.
    pub momentum: f64,
}

impl Default for MlpParams {
    fn default() -> Self {
        Self {
            hidden: 16,
            epochs: 60,
            lr: 0.05,
            momentum: 0.9,
        }
    }
}

/// A binary MLP classifier over dense `f64` feature vectors.
#[derive(Debug, Clone)]
pub struct Mlp {
    w1: Vec<f64>, // hidden x input
    b1: Vec<f64>,
    w2: Vec<f64>, // hidden
    b2: f64,
    inputs: usize,
    hidden: usize,
}

impl Mlp {
    /// Trains on rows `xs` with binary targets `ys` (0.0 / 1.0).
    ///
    /// # Panics
    /// Panics on empty input or ragged rows.
    pub fn train(xs: &[Vec<f64>], ys: &[f64], params: &MlpParams, seed: u64) -> Self {
        assert!(!xs.is_empty(), "cannot train on empty data");
        assert_eq!(xs.len(), ys.len());
        let inputs = xs[0].len();
        assert!(xs.iter().all(|x| x.len() == inputs), "ragged rows");
        let hidden = params.hidden.max(1);

        let mut rng = StdRng::seed_from_u64(seed);
        let scale = (2.0 / inputs as f64).sqrt();
        let mut w1: Vec<f64> = (0..hidden * inputs)
            .map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * scale)
            .collect();
        let mut b1 = vec![0.0; hidden];
        let mut w2: Vec<f64> = (0..hidden)
            .map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * scale)
            .collect();
        let mut b2 = 0.0f64;

        let mut vw1 = vec![0.0; w1.len()];
        let mut vb1 = vec![0.0; b1.len()];
        let mut vw2 = vec![0.0; w2.len()];
        let mut vb2 = 0.0f64;

        let mut order: Vec<usize> = (0..xs.len()).collect();
        let mut hid = vec![0.0f64; hidden];
        for _ in 0..params.epochs {
            use rand::seq::SliceRandom;
            order.shuffle(&mut rng);
            for &i in &order {
                let x = &xs[i];
                // Forward.
                for h in 0..hidden {
                    let z: f64 = b1[h]
                        + w1[h * inputs..(h + 1) * inputs]
                            .iter()
                            .zip(x)
                            .map(|(w, xi)| w * xi)
                            .sum::<f64>();
                    hid[h] = z.tanh();
                }
                let z2: f64 = b2 + w2.iter().zip(&hid).map(|(w, h)| w * h).sum::<f64>();
                let p = 1.0 / (1.0 + (-z2).exp());
                // Backward (cross-entropy).
                let dz2 = p - ys[i];
                for h in 0..hidden {
                    let dw2 = dz2 * hid[h];
                    vw2[h] = params.momentum * vw2[h] - params.lr * dw2;
                    let dh = dz2 * w2[h] * (1.0 - hid[h] * hid[h]);
                    w2[h] += vw2[h];
                    let row = h * inputs..(h + 1) * inputs;
                    for ((v, w), xj) in vw1[row.clone()].iter_mut().zip(&mut w1[row]).zip(x) {
                        *v = params.momentum * *v - params.lr * dh * xj;
                        *w += *v;
                    }
                    vb1[h] = params.momentum * vb1[h] - params.lr * dh;
                    b1[h] += vb1[h];
                }
                vb2 = params.momentum * vb2 - params.lr * dz2;
                b2 += vb2;
            }
        }
        Self {
            w1,
            b1,
            w2,
            b2,
            inputs,
            hidden,
        }
    }

    /// Probability of class 1 for a feature vector.
    ///
    /// # Panics
    /// Panics if `x` has the wrong width.
    pub fn proba(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.inputs, "input width mismatch");
        let mut z2 = self.b2;
        for h in 0..self.hidden {
            let z: f64 = self.b1[h]
                + self.w1[h * self.inputs..(h + 1) * self.inputs]
                    .iter()
                    .zip(x)
                    .map(|(w, xi)| w * xi)
                    .sum::<f64>();
            z2 += self.w2[h] * z.tanh();
        }
        1.0 / (1.0 + (-z2).exp())
    }

    /// Hard 0/1 decision at threshold 0.5.
    pub fn decide(&self, x: &[f64]) -> bool {
        self.proba(x) > 0.5
    }

    /// Expected input width.
    pub fn inputs(&self) -> usize {
        self.inputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_linearly_separable() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<Vec<f64>> = (0..400)
            .map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| f64::from(x[0] + x[1] > 1.0)).collect();
        let m = Mlp::train(&xs, &ys, &MlpParams::default(), 2);
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| f64::from(m.decide(x)) == y)
            .count();
        assert!(correct as f64 / xs.len() as f64 > 0.95);
    }

    #[test]
    fn learns_xor() {
        // Nonlinear decision boundary — a linear model cannot do this.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..600 {
            let a = rng.gen::<f64>();
            let b = rng.gen::<f64>();
            xs.push(vec![a, b]);
            ys.push(f64::from((a > 0.5) ^ (b > 0.5)));
        }
        let m = Mlp::train(
            &xs,
            &ys,
            &MlpParams {
                hidden: 24,
                epochs: 400,
                lr: 0.03,
                momentum: 0.9,
            },
            4,
        );
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| f64::from(m.decide(x)) == y)
            .count();
        assert!(
            correct as f64 / xs.len() as f64 > 0.9,
            "acc={}",
            correct as f64 / xs.len() as f64
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![f64::from(i % 7) / 7.0]).collect();
        let ys: Vec<f64> = (0..50).map(|i| f64::from(i % 2)).collect();
        let a = Mlp::train(&xs, &ys, &MlpParams::default(), 9);
        let b = Mlp::train(&xs, &ys, &MlpParams::default(), 9);
        for x in &xs {
            assert_eq!(a.proba(x), b.proba(x));
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_wrong_width() {
        let m = Mlp::train(
            &[vec![0.0, 1.0]],
            &[1.0],
            &MlpParams {
                epochs: 1,
                ..Default::default()
            },
            0,
        );
        let _ = m.proba(&[0.0]);
    }
}
