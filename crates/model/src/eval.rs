//! Model evaluation helpers.

use cce_dataset::{Dataset, Label};

use crate::Model;

/// Fraction of rows whose prediction equals the recorded label.
pub fn accuracy<M: Model + ?Sized>(model: &M, ds: &Dataset) -> f64 {
    if ds.is_empty() {
        return 1.0;
    }
    let hits = ds.iter().filter(|(x, y)| model.predict(x) == *y).count();
    hits as f64 / ds.len() as f64
}

/// A 2×2 confusion matrix for binary tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// True positives (`pred = 1`, `label = 1`).
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Computes the confusion matrix of `model` over `ds`.
    pub fn of<M: Model + ?Sized>(model: &M, ds: &Dataset) -> Self {
        let mut c = Self::default();
        for (x, y) in ds.iter() {
            match (model.predict(x), y) {
                (Label(1), Label(1)) => c.tp += 1,
                (Label(1), _) => c.fp += 1,
                (Label(0), Label(0)) => c.tn += 1,
                _ => c.fn_ += 1,
            }
        }
        c
    }

    /// Precision of the positive class (1.0 when nothing was predicted
    /// positive).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall of the positive class (1.0 when there are no positives).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelFn;
    use cce_dataset::{FeatureDef, Instance, Schema};

    fn toy() -> Dataset {
        let schema = Schema::new(vec![FeatureDef::categorical("a", &["0", "1"])]);
        let instances = (0..4).map(|i| Instance::new(vec![i % 2])).collect();
        let labels = vec![Label(0), Label(1), Label(0), Label(0)];
        Dataset::new("t".into(), schema, instances, labels)
    }

    #[test]
    fn accuracy_counts_hits() {
        let ds = toy();
        let m = ModelFn(|x: &Instance| Label(x[0]));
        // predictions: 0,1,0,1 vs labels 0,1,0,0 => 3/4.
        assert_eq!(accuracy(&m, &ds), 0.75);
    }

    #[test]
    fn confusion_matrix_totals() {
        let ds = toy();
        let m = ModelFn(|x: &Instance| Label(x[0]));
        let c = Confusion::of(&m, &ds);
        assert_eq!(c.tp + c.fp + c.tn + c.fn_, ds.len());
        assert_eq!(c.tp, 1);
        assert_eq!(c.fp, 1);
        assert_eq!(c.tn, 2);
        assert_eq!(c.fn_, 0);
        assert_eq!(c.precision(), 0.5);
        assert_eq!(c.recall(), 1.0);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let ds = toy();
        let never = ModelFn(|_: &Instance| Label(0));
        let c = Confusion::of(&never, &ds);
        assert_eq!(c.precision(), 1.0, "no positive predictions");
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn empty_dataset_is_perfect() {
        let ds = toy().head(0);
        let m = ModelFn(|_: &Instance| Label(0));
        assert_eq!(accuracy(&m, &ds), 1.0);
    }
}
