//! Property-based tests of the model substrate.

use cce_dataset::{Dataset, FeatureDef, Instance, Label, Schema};
use cce_model::{DecisionTree, Gbdt, GbdtParams, Model, NaiveBayes, TreeParams};
use proptest::prelude::*;

/// Strategy: a small random binary dataset over 3 features of cardinality 4.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    proptest::collection::vec((proptest::collection::vec(0u32..4, 3..4), 0u32..2), 4..40).prop_map(
        |rows| {
            let schema = Schema::new(vec![
                FeatureDef::categorical("a", &["0", "1", "2", "3"]),
                FeatureDef::categorical("b", &["0", "1", "2", "3"]),
                FeatureDef::categorical("c", &["0", "1", "2", "3"]),
            ]);
            let (xs, ys): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
            Dataset::new(
                "p".into(),
                schema,
                xs.into_iter().map(Instance::new).collect(),
                ys.into_iter().map(Label).collect(),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_predictions_are_valid_labels(ds in arb_dataset()) {
        let t = DecisionTree::train(&ds, &TreeParams::default());
        let classes = ds.distinct_labels();
        for x in ds.instances() {
            prop_assert!(classes.contains(&t.predict(x)));
        }
    }

    #[test]
    fn tree_fits_consistent_data_perfectly(ds in arb_dataset()) {
        // If the dataset has no contradictions (identical instances with
        // different labels), an unbounded-depth tree must fit it exactly.
        let mut seen: std::collections::HashMap<Vec<u32>, Label> = Default::default();
        let mut consistent = true;
        for (x, y) in ds.iter() {
            if *seen.entry(x.values().to_vec()).or_insert(y) != y {
                consistent = false;
            }
        }
        prop_assume!(consistent);
        let t = DecisionTree::train(
            &ds,
            &TreeParams { max_depth: 12, min_samples_leaf: 1, ..Default::default() },
        );
        for (x, y) in ds.iter() {
            prop_assert_eq!(t.predict(x), y);
        }
    }

    #[test]
    fn gbdt_margin_sign_matches_prediction(ds in arb_dataset()) {
        let m = Gbdt::train(&ds, &GbdtParams::fast(), 0);
        for x in ds.instances() {
            let margin = m.margin(x);
            prop_assert_eq!(m.predict(x), Label(u32::from(margin > 0.0)));
            let p = m.predict_proba(x);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert_eq!(p > 0.5, margin > 0.0);
        }
    }

    #[test]
    fn nb_scores_are_finite_everywhere(ds in arb_dataset()) {
        let m = NaiveBayes::train(&ds, 1.0);
        // Probe the whole (small) feature space, including unseen combos.
        for a in 0..4u32 {
            for b in 0..4u32 {
                for c in 0..4u32 {
                    let x = Instance::new(vec![a, b, c]);
                    let scores = m.log_scores(&x);
                    prop_assert!(scores.iter().all(|s| s.is_finite()));
                }
            }
        }
    }

    #[test]
    fn retraining_is_bit_identical(ds in arb_dataset()) {
        // Same data, same order → bit-identical model behavior. (Row-order
        // *insensitivity* does not hold: float gain sums depend on
        // accumulation order at ties.)
        let a = Gbdt::train(&ds, &GbdtParams::fast(), 0);
        let b = Gbdt::train(&ds, &GbdtParams::fast(), 1);
        for x in ds.instances() {
            prop_assert_eq!(a.predict(x), b.predict(x));
            prop_assert_eq!(a.margin(x), b.margin(x));
        }
    }
}
