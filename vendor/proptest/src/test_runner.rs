//! Test configuration and the deterministic case generator.

/// Per-test configuration (`cases` is the only knob this stand-in
/// honors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The generator feeding strategies; deterministic per test name so CI
/// failures reproduce locally.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (the expanded test's module path).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name keeps distinct tests on distinct streams.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        Self { state: h }
    }

    /// Seeds from an explicit integer.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 uniform bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample an empty range");
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_names_get_distinct_streams() {
        let mut a = TestRng::from_name("a");
        let mut b = TestRng::from_name("b");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn config_default_is_nonzero() {
        assert!(ProptestConfig::default().cases > 0);
        assert_eq!(ProptestConfig::with_cases(9).cases, 9);
    }
}
