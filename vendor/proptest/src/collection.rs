//! Collection strategies (`proptest::collection` subset).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size window for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// A strategy generating `Vec`s of `element` with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_respect_the_size_range() {
        let mut rng = TestRng::from_seed(3);
        let strat = vec(0u32..10, 2usize..6);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()), "len={}", v.len());
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = vec(0u32..2, 4usize..=4);
        assert_eq!(exact.generate(&mut rng).len(), 4);
    }
}
