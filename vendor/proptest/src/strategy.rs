//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// deterministic function of the test RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

/// String-pattern strategies: a `&str` is treated as a (tiny subset of a)
/// regex and generates matching `String`s.
///
/// Supported syntax: literal characters, `[...]` character classes with
/// ranges (no negation), and the quantifiers `{n}`, `{n,m}`, `?`, `*`,
/// `+` (`*`/`+` capped at 8 repeats). This covers patterns like
/// `"[a-d ]{0,20}"`; anything fancier panics loudly rather than
/// mis-generating.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class or a literal character.
            let class: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed [ in pattern {self:?}"))
                        + i;
                    let body = &chars[i + 1..close];
                    assert!(
                        body.first() != Some(&'^'),
                        "negated classes are not supported in pattern {self:?}"
                    );
                    let mut set = Vec::new();
                    let mut j = 0;
                    while j < body.len() {
                        if j + 2 < body.len() && body[j + 1] == '-' {
                            let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
                            assert!(lo <= hi, "bad range in pattern {self:?}");
                            set.extend((lo..=hi).filter_map(char::from_u32));
                            j += 3;
                        } else {
                            set.push(body[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    set
                }
                '\\' => {
                    let c = *chars
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("dangling \\ in pattern {self:?}"));
                    i += 2;
                    vec![c]
                }
                c => {
                    assert!(
                        !"(|)^$.".contains(c),
                        "unsupported regex syntax {c:?} in pattern {self:?}"
                    );
                    i += 1;
                    vec![c]
                }
            };
            assert!(
                !class.is_empty(),
                "empty character class in pattern {self:?}"
            );
            // Optional quantifier.
            let (lo, hi) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unclosed {{ in pattern {self:?}"))
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((a, b)) => (
                            a.parse()
                                .unwrap_or_else(|_| panic!("bad repeat in {self:?}")),
                            b.parse()
                                .unwrap_or_else(|_| panic!("bad repeat in {self:?}")),
                        ),
                        None => {
                            let n: usize = body
                                .parse()
                                .unwrap_or_else(|_| panic!("bad repeat in {self:?}"));
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            };
            assert!(lo <= hi, "bad repeat range in pattern {self:?}");
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                out.push(class[rng.below(class.len() as u64) as usize]);
            }
        }
        out
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_combinators_compose() {
        let mut rng = TestRng::from_seed(11);
        let strat = (0u32..4, 1usize..=3).prop_map(|(a, b)| a as usize + b);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..7).contains(&v), "v={v}");
        }
        let flat = (2usize..5).prop_flat_map(|n| crate::collection::vec(0u8..2, n..=n));
        for _ in 0..50 {
            let v = flat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        assert_eq!(Just(7).generate(&mut rng), 7);
    }

    #[test]
    fn string_patterns_generate_matching_text() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let s = "[a-d ]{0,20}".generate(&mut rng);
            assert!(s.len() <= 20);
            assert!(
                s.chars().all(|c| ('a'..='d').contains(&c) || c == ' '),
                "{s:?}"
            );
        }
        let s = "ab[0-1]+c?".generate(&mut rng);
        assert!(s.starts_with("ab"), "{s:?}");
        assert_eq!("x{3}".generate(&mut rng), "xxx");
    }
}
