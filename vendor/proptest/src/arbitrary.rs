//! `any::<T>()` — canonical strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (uniform over its whole domain).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for primitives.
#[derive(Debug, Clone, Copy)]
pub struct FullDomain<T>(core::marker::PhantomData<T>);

macro_rules! impl_arbitrary {
    ($($t:ty => |$rng:ident| $gen:expr;)*) => {$(
        impl Strategy for FullDomain<$t> {
            type Value = $t;
            fn generate(&self, $rng: &mut TestRng) -> $t {
                $gen
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullDomain<$t>;
            fn arbitrary() -> Self::Strategy {
                FullDomain(core::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary! {
    bool => |rng| rng.next_u64() & 1 == 1;
    u8 => |rng| rng.next_u64() as u8;
    u16 => |rng| rng.next_u64() as u16;
    u32 => |rng| rng.next_u64() as u32;
    u64 => |rng| rng.next_u64();
    usize => |rng| rng.next_u64() as usize;
    i8 => |rng| rng.next_u64() as i8;
    i16 => |rng| rng.next_u64() as i16;
    i32 => |rng| rng.next_u64() as i32;
    i64 => |rng| rng.next_u64() as i64;
    isize => |rng| rng.next_u64() as isize;
    f64 => |rng| rng.next_f64();
    f32 => |rng| rng.next_f64() as f32;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::from_seed(8);
        let strat = any::<bool>();
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[usize::from(strat.generate(&mut rng))] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
