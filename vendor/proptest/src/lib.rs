//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset its property tests use: the [`proptest!`]
//! macro, [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! numeric-range and tuple strategies, [`collection::vec`],
//! [`arbitrary::any`], and the `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics deliberately simplified relative to upstream:
//!
//! * cases are generated from a seed derived from the test name, so every
//!   run explores the same deterministic sequence (good for CI);
//! * failing inputs are **not shrunk** — the panic message carries the
//!   case number instead;
//! * `.proptest-regressions` files are ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each function runs its body over
/// `ProptestConfig::cases` generated inputs.
///
/// ```ignore
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]; expands one test function at a
/// time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let __strategy = ($($strat,)+);
            for _ in 0..__config.cases {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                // A prop_assume! failure returns false and skips the case.
                let __keep: bool = (|| {
                    $body
                    true
                })();
                if !__keep {
                    continue;
                }
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return false;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return false;
        }
    };
}
