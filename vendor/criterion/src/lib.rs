//! Vendored, dependency-free stand-in for the `criterion` benchmark
//! harness.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology (simplified relative to upstream): every benchmark is
//! warmed up briefly, then timed over batches until a wall-clock budget
//! is spent; the mean, min, and max per-iteration times are printed.
//! There are no statistical outlier reports or HTML artifacts. Two
//! environment knobs tune the budget:
//!
//! * `CRITERION_WARMUP_MS` — warm-up per benchmark (default 50),
//! * `CRITERION_MEASURE_MS` — measurement per benchmark (default 300).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity; re-exported for bench code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost; this stand-in times each
/// routine invocation individually, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream.
    SmallInput,
    /// Large inputs: few per batch upstream.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Work-per-iteration annotation used to report throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// A benchmark's display identifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id rendered as the bare parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

fn env_ms(name: &str, default: u64) -> Duration {
    Duration::from_millis(
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default),
    )
}

/// Measurement state handed to the benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    /// Mean/min/max per-iteration nanoseconds and iteration count of the
    /// last `iter*` call.
    result: Option<Sample>,
}

/// One benchmark's timing summary.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest observed iteration.
    pub min_ns: f64,
    /// Slowest observed iteration.
    pub max_ns: f64,
    /// Iterations measured.
    pub iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly and records the per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget is spent.
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            black_box(routine());
        }
        // Measure in growing batches so cheap routines aren't dominated
        // by clock reads.
        let mut batch: u64 = 1;
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let mut min_ns = f64::INFINITY;
        let mut max_ns: f64 = 0.0;
        while total < self.measure {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            let per = dt.as_nanos() as f64 / batch as f64;
            min_ns = min_ns.min(per);
            max_ns = max_ns.max(per);
            total += dt;
            iters += batch;
            if dt < Duration::from_millis(5) {
                batch = batch.saturating_mul(2);
            }
        }
        self.result = Some(Sample {
            mean_ns: total.as_nanos() as f64 / iters.max(1) as f64,
            min_ns,
            max_ns,
            iters,
        });
    }

    /// Times `routine` over fresh inputs from `setup`; setup cost is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            let input = setup();
            black_box(routine(input));
        }
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let mut min_ns = f64::INFINITY;
        let mut max_ns: f64 = 0.0;
        while total < self.measure {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let dt = t0.elapsed();
            let per = dt.as_nanos() as f64;
            min_ns = min_ns.min(per);
            max_ns = max_ns.max(per);
            total += dt;
            iters += 1;
        }
        self.result = Some(Sample {
            mean_ns: total.as_nanos() as f64 / iters.max(1) as f64,
            min_ns,
            max_ns,
            iters,
        });
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one(
    name: &str,
    warm_up: Duration,
    measure: Duration,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) -> Option<Sample> {
    let mut b = Bencher {
        warm_up,
        measure,
        result: None,
    };
    f(&mut b);
    if let Some(s) = b.result {
        let mut line = format!(
            "{name:<48} time: [{} {} {}]  ({} iters)",
            human(s.min_ns),
            human(s.mean_ns),
            human(s.max_ns),
            s.iters
        );
        if let Some(t) = throughput {
            let (amount, unit) = match t {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            let rate = amount / (s.mean_ns / 1e9);
            line.push_str(&format!("  thrpt: {rate:.0} {unit}"));
        }
        println!("{line}");
    } else {
        println!("{name:<48} (no measurement recorded)");
    }
    b.result
}

/// The benchmark manager; collects and prints measurements.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
    /// `(name, sample)` pairs in execution order.
    samples: Vec<(String, Sample)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: env_ms("CRITERION_WARMUP_MS", 50),
            measure: env_ms("CRITERION_MEASURE_MS", 300),
            samples: Vec::new(),
        }
    }
}

impl Criterion {
    /// Upstream parses CLI flags here; this stand-in accepts and ignores
    /// them (cargo passes `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        if let Some(s) = run_one(&id.id, self.warm_up, self.measure, None, &mut f) {
            self.samples.push((id.id, s));
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// All measurements recorded so far (exposed so harness code can
    /// post-process, e.g. compute overhead ratios).
    pub fn samples(&self) -> &[(String, Sample)] {
        &self.samples
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Upstream controls sampling counts; this stand-in keeps its
    /// wall-clock budget and ignores the value.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Upstream lengthens measurement; this stand-in uses the value as
    /// the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.parent.measure = d;
        self
    }

    /// Annotates following benchmarks with work-per-iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        if let Some(s) = run_one(
            &full,
            self.parent.warm_up,
            self.parent.measure,
            self.throughput,
            &mut f,
        ) {
            self.parent.samples.push((full, s));
        }
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (purely cosmetic here).
    pub fn finish(self) {}
}

/// Declares a group-runner function invoking each benchmark function with
/// a shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measure: Duration::from_millis(5),
            samples: Vec::new(),
        };
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grp");
        group.throughput(Throughput::Elements(100));
        group.bench_function(BenchmarkId::new("batched", 1), |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(c.samples().len(), 2);
        assert!(c
            .samples()
            .iter()
            .all(|(_, s)| s.iters > 0 && s.mean_ns > 0.0));
    }
}
