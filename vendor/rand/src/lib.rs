//! Vendored, dependency-free stand-in for the `rand` crate (0.8 API).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the exact API subset it uses: [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`] / [`rngs::SmallRng`], and [`seq::SliceRandom`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! well-distributed, and deterministic for a given seed, which is all the
//! reproduction needs (statistical identity with upstream `rand` streams
//! is *not* preserved; every consumer in this workspace seeds explicitly
//! and asserts only self-consistent properties).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// The raw source of randomness: 64 uniform bits per call.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an `RngCore` (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = f64::sample(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = f64::sample(rng) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A value sampled from the standard distribution of `T` (uniform
    /// over the full domain; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A value sampled uniformly from `range`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;

    /// Builds a generator from a fixed (arbitrary) seed. Provided so code
    /// written against upstream `rand` keeps compiling; this vendored
    /// build has no OS entropy source and is deterministic.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9E37_79B9_7F4A_7C15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(3i64..=3);
            assert_eq!(v, 3);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
