//! The workspace's generators: xoshiro256++ behind the `StdRng` /
//! `SmallRng` names.

use crate::{RngCore, SeedableRng};

/// A deterministic xoshiro256++ generator (the `StdRng` role).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

/// In upstream `rand` a lighter generator; here the same engine.
pub type SmallRng = StdRng;

impl StdRng {
    /// The four xoshiro256++ state words — everything the generator is.
    ///
    /// Together with [`StdRng::from_state_words`] this makes the stream
    /// checkpointable: a restored generator continues bit-for-bit where
    /// the captured one left off.
    pub fn state_words(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from captured state words (see
    /// [`StdRng::state_words`]).
    pub fn from_state_words(s: [u64; 4]) -> Self {
        Self { s }
    }

    fn from_state(mut state: u64) -> Self {
        // SplitMix64 expansion of the seed into four non-zero words.
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Self { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        Self::from_state(state)
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_differ_across_seeds() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn state_words_round_trip_continues_the_stream() {
        let mut a = StdRng::seed_from_u64(31);
        for _ in 0..5 {
            a.next_u64();
        }
        let mut b = StdRng::from_state_words(a.state_words());
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb, "restored stream must continue bit-for-bit");
    }
}
