//! Monitoring a served model for silent degradation (§7.4, Fig. 3l/3m):
//! when noise hits the serving stream, the relative keys of monitored
//! instances abnormally grow — a model-access-free accuracy alarm.
//!
//! ```bash
//! cargo run --release --example drift_monitoring
//! ```

use relative_keys::core::DriftMonitor;
use relative_keys::dataset::synth::{self, noise};
use relative_keys::prelude::*;

fn main() {
    let raw = synth::adult::generate(8_000, 42);
    let data = raw.encode(&BinSpec::uniform(10));
    let mut rng = rand_seed(4);
    let (train, infer) = data.split(0.6, &mut rng);
    let model = Gbdt::train(&train, &GbdtParams::fast(), 0);

    for noisy in [false, true] {
        let mut stream = infer.clone();
        if noisy {
            // From 60% of the stream onward, instances are random garbage —
            // simulating an upstream data-quality incident.
            let mut nrng = rand_seed(9);
            noise::randomize_tail(&mut stream, 0.6, &mut nrng);
        }
        let preds = {
            use relative_keys::model::Model as _;
            model.predict_all(stream.instances())
        };

        let mut monitor =
            DriftMonitor::new(Alpha::ONE, 12, stream.len() / 10, 1).expect("valid monitor config");
        let mut correct = 0usize;
        println!(
            "\n=== {} stream ===",
            if noisy {
                "NOISY (incident at 60%)"
            } else {
                "clean"
            }
        );
        println!("{:>6} {:>12} {:>10}", "I%", "mean |key|", "accuracy");
        for (i, (x, &p)) in stream.instances().iter().zip(&preds).enumerate() {
            monitor.observe(x.clone(), p);
            correct += usize::from(p == stream.label(i));
            if (i + 1) % (stream.len() / 5) == 0 {
                println!(
                    "{:>5}% {:>12.2} {:>9.1}%",
                    (i + 1) * 100 / stream.len(),
                    monitor.mean_succinctness(),
                    correct as f64 / (i + 1) as f64 * 100.0
                );
            }
        }
        println!(
            "drift score = {:.2} → {}",
            monitor.drift_score(0.5),
            if monitor.drifted(1.05) {
                "ALARM: keys grew abnormally"
            } else {
                "nominal"
            }
        );
    }
}
