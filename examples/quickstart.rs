//! Quickstart: explain a loan decision with a relative key.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! The pipeline mirrors §6 of the paper: a bank's client receives
//! predictions from a (possibly remote) model during serving, records the
//! `(instance, prediction)` pairs as its *context*, and asks CCE for an
//! explanation — without ever querying the model.

use relative_keys::core::{Cce, CceConfig};
use relative_keys::dataset::synth;
use relative_keys::prelude::*;

fn main() {
    // 1. Data: the Loan stand-in (614 applications), discretized.
    let raw = synth::loan::generate(614, 42);
    let data = raw.encode(&BinSpec::uniform(10));
    let mut rng = rand_seed(7);
    let (train, infer) = data.split(0.7, &mut rng);

    // 2. A model serves predictions (stands in for a remote ML service).
    let model = Gbdt::train(&train, &GbdtParams::default(), 0);

    // 3. The client records served predictions as its context. This is the
    //    only place the model is touched — and it is the serving loop, not
    //    the explainer.
    let ctx = Context::from_model(&infer, &model);
    let cce = Cce::with_context(ctx, CceConfig::default());

    // 4. Explain the first few inference instances.
    let schema = infer.schema();
    for t in 0..5 {
        let outcome = infer.label_name(cce.context().prediction(t));
        match cce.explain_row(t) {
            Ok(key) => {
                println!(
                    "instance {t}: {}",
                    key.render(schema, cce.context().instance(t), &outcome)
                );
                println!(
                    "  succinctness = {}, conformity over context = {:.1}%",
                    key.succinctness(),
                    key.achieved_conformity() * 100.0
                );
            }
            Err(e) => println!("instance {t}: no key ({e})"),
        }
    }

    // 5. The explanation is *provably* conformant over the context: every
    //    application agreeing on the key features gets the same outcome.
    let key = cce.explain_row(0).expect("row 0 explainable");
    assert!(cce.context().is_alpha_key(key.features(), 0, Alpha::ONE));
    println!(
        "\nverified: the key conforms over all {} inference instances",
        cce.context().len()
    );
}
