//! The paper's §8 future-work directions, implemented: context-relative
//! Shapley feature importance and pattern-level summaries relative to a
//! context — both computed with zero model access.
//!
//! ```bash
//! cargo run --release --example relative_importance
//! ```

use relative_keys::core::{importance, patterns, Alpha, Context, ImportanceParams, SummaryParams};
use relative_keys::dataset::synth;
use relative_keys::prelude::*;

fn main() {
    let raw = synth::loan::generate(614, 42);
    let data = raw.encode(&BinSpec::uniform(10));
    let mut rng = rand_seed(7);
    let (train, infer) = data.split(0.7, &mut rng);
    let model = Gbdt::train(&train, &GbdtParams::default(), 0);
    let ctx = Context::from_model(&infer, &model);
    let schema = infer.schema();

    // --- Context-relative Shapley importance -----------------------------
    // The characteristic function is the explanation's precision over the
    // context — so the scores say how much each feature contributes to
    // making the explanation conformant, not how the (unreachable) model
    // weighs it internally.
    let t = 0;
    let phi = importance::shapley_sampled(
        &ctx,
        t,
        ImportanceParams {
            permutations: 256,
            seed: 1,
        },
    )
    .expect("valid target");
    println!(
        "context-relative importance for instance {t} ({}):",
        infer.label_name(ctx.prediction(t))
    );
    let mut ranked: Vec<(usize, f64)> = phi.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (f, s) in ranked.iter().take(5) {
        println!("  {:<14} {s:+.3}", schema.feature(*f).name);
    }

    // The relative key's features should top the ranking.
    let key = Srk::new(Alpha::ONE).explain(&ctx, t).unwrap();
    println!(
        "  (relative key uses {:?})",
        key.features()
            .iter()
            .map(|&f| &schema.feature(f).name)
            .collect::<Vec<_>>()
    );

    // --- Pattern-level summary relative to the context --------------------
    // Every pattern is an α-conformant key turned into a rule: matching
    // instances are *guaranteed* (α = 1) to carry the stated prediction —
    // the conformity IDS cannot offer.
    let summary = patterns::summarize(
        &ctx,
        SummaryParams {
            max_patterns: 8,
            coverage_target: 0.9,
            ..Default::default()
        },
    )
    .expect("non-empty context");
    println!(
        "\npattern summary: {} patterns covering {:.1}% of {} served instances",
        summary.len(),
        summary.coverage() * 100.0,
        ctx.len()
    );
    for p in summary.patterns().iter().take(8) {
        println!(
            "  [{:>3} instances, precision {:.0}%] {}",
            p.support,
            p.precision * 100.0,
            p.render(schema, &infer.label_name(p.prediction))
        );
    }
}
