//! Explaining entity-matching decisions (§7.5): CCE vs the specialized
//! CERTA explainer over an opaque DNN matcher that formal methods cannot
//! explain at all.
//!
//! ```bash
//! cargo run --release --example entity_matching
//! ```

use relative_keys::baselines::{Certa, CertaParams};
use relative_keys::core::Srk;
use relative_keys::dataset::synth::em;
use relative_keys::model::{Matcher, MlpParams};
use relative_keys::prelude::*;

fn main() {
    // Amazon-Google software products: pairs of records that may refer to
    // the same product.
    let emd = em::amazon_google(2_000, 42);
    let all = emd.to_raw().encode(&BinSpec::uniform(8));
    let mut rng = rand_seed(5);
    let (train, infer) = all.split(0.7, &mut rng);

    // The Ditto stand-in: an MLP over per-attribute similarities — a
    // blackbox non-tree model. Xreason cannot explain this model.
    let matcher = Matcher::train(&train, &MlpParams::default(), 6);
    let acc = relative_keys::model::eval::accuracy(&matcher, &infer);
    println!("matcher accuracy on held-out pairs: {:.1}%", acc * 100.0);

    // CCE explains from recorded predictions alone.
    let ctx = Context::from_model(&infer, &matcher);
    let srk = Srk::new(Alpha::ONE);

    // Explain the first predicted match.
    let t = (0..ctx.len())
        .find(|&t| ctx.prediction(t).0 == 1)
        .expect("some pair is predicted a match");
    let key = srk.explain(&ctx, t).expect("explainable");
    let attr_names: Vec<&str> = emd.attr_names.iter().map(String::as_str).collect();
    println!(
        "\nCCE: pair {t} predicted MATCH because of attributes {:?}",
        key.features()
            .iter()
            .map(|&f| attr_names[f])
            .collect::<Vec<_>>()
    );
    println!(
        "  (conformant over all {} served pairs, {} features of {})",
        ctx.len(),
        key.succinctness(),
        attr_names.len()
    );

    // CERTA's saliency for the same pair — requires the raw records and
    // many model queries.
    let certa = Certa::new(&emd, all.schema_arc(), CertaParams::default());
    // Map the inference row back to a pair index by matching the encoding.
    let pair_idx = (0..emd.pairs.len())
        .find(|&i| certa.encode_sims(&emd.similarities(&emd.pairs[i])) == *ctx.instance(t))
        .expect("pair exists");
    let t0 = std::time::Instant::now();
    let saliency = certa.importance(&matcher, pair_idx);
    let certa_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("\nCERTA saliency ({certa_ms:.1} ms):");
    for (a, s) in attr_names.iter().zip(&saliency) {
        println!(
            "  {a:<14} flips the decision {:.0}% of the time when swapped",
            s * 100.0
        );
    }

    let t0 = std::time::Instant::now();
    let _ = srk.explain(&ctx, t).unwrap();
    let cce_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "\nCCE explained the same pair in {cce_ms:.3} ms — {:.0}x faster",
        certa_ms / cce_ms.max(1e-9)
    );
}
