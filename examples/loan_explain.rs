//! The paper's running example (Examples 1-2, Fig. 1/2): compare a
//! relative key against the formal (Xreason) and heuristic (Anchor)
//! explanations of a denied loan application — including the conformity
//! counterexample and the α trade-off.
//!
//! ```bash
//! cargo run --release --example loan_explain
//! ```

use relative_keys::baselines::{Anchor, AnchorParams, Xreason};
use relative_keys::core::Srk;
use relative_keys::dataset::synth;
use relative_keys::prelude::*;

fn main() {
    let raw = synth::loan::generate(614, 42);
    let data = raw.encode(&BinSpec::uniform(10));
    let mut rng = rand_seed(7);
    let (train, infer) = data.split(0.7, &mut rng);
    let model = Gbdt::train(&train, &GbdtParams::default(), 0);
    let ctx = Context::from_model(&infer, &model);
    let schema = infer.schema();

    // Pick a denied urban application, preferring one whose key is
    // non-trivial (≥ 2 features) like the paper's x0.
    let credit = schema.index_of("Credit").unwrap();
    let area = schema.index_of("Area").unwrap();
    let srk = Srk::new(Alpha::ONE);
    let candidates: Vec<usize> = (0..infer.len())
        .filter(|&t| {
            infer.instance(t)[credit] == 1
                && infer.instance(t)[area] == 0
                && ctx.prediction(t).0 == 0
        })
        .collect();
    let x0 = candidates
        .iter()
        .copied()
        .find(|&t| {
            srk.explain(&ctx, t)
                .map(|k| k.succinctness() >= 2)
                .unwrap_or(false)
        })
        .or_else(|| candidates.first().copied())
        .expect("a denied urban application exists");
    let x = infer.instance(x0).clone();
    println!("x0 (denied urban application):");
    for (f, def) in schema.features().iter().enumerate() {
        println!("  {:<14} = {}", def.name, def.display(x[f]));
    }

    // --- Formal: Xreason over the whole feature space --------------------
    let xr = Xreason::new(&model, schema);
    let t0 = std::time::Instant::now();
    let formal = xr.explain(&x);
    let xr_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "\nXreason ({xr_ms:.2} ms): {}",
        schema.render_conjunction(&x, &formal)
    );

    // --- Heuristic: Anchor ----------------------------------------------
    let anchor = Anchor::new(&train, AnchorParams::default());
    let t0 = std::time::Instant::now();
    let rule = anchor.explain(&model, &x);
    let an_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "Anchor  ({an_ms:.2} ms): {}",
        schema.render_conjunction(&x, &rule)
    );

    // Does a real inference instance violate Anchor's rule (Fig. 1's x1)?
    if let Some(v) = (0..ctx.len()).find(|&t| {
        t != x0 && ctx.instance(t).agrees_on(&x, &rule) && ctx.prediction(t) != ctx.prediction(x0)
    }) {
        println!(
            "  ⚠ violated by inference instance {v}: same {} but predicted {}",
            schema.render_conjunction(ctx.instance(v), &rule),
            infer.label_name(ctx.prediction(v)),
        );
    } else {
        println!("  (no violating inference instance in this run)");
    }

    // --- CCE: the relative key -------------------------------------------
    let t0 = std::time::Instant::now();
    let key = srk.explain(&ctx, x0).expect("explainable");
    let cce_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "CCE     ({cce_ms:.2} ms): {}",
        key.render(schema, &x, &infer.label_name(ctx.prediction(x0)))
    );
    println!(
        "  perfect conformity over the {} inference instances, {:.0}x faster than Xreason",
        ctx.len(),
        xr_ms / cce_ms.max(1e-6)
    );

    // --- α trade-off (Example 4) ------------------------------------------
    println!("\nconformity/succinctness trade-off:");
    for a in [1.0, 0.98, 0.95, 0.9] {
        let alpha = Alpha::new(a).unwrap();
        let k = Srk::new(alpha).explain(&ctx, x0).expect("explainable");
        println!(
            "  α = {a:<5} key size = {} achieved conformity = {:.1}%",
            k.succinctness(),
            k.achieved_conformity() * 100.0
        );
    }
}
